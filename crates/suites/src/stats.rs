//! The Stats suite (§7.1): statistical analyses extracted from the MagPie
//! repository — Covariance, Standard Error, Hadamard Product etc. 19
//! fragments, 18 translated (Table 1); the variable-kernel convolution
//! fails because its inner loop is inexpressible in the IR.

use rand::rngs::StdRng;
use seqlang::env::Env;
use seqlang::value::Value;

use crate::data;
use crate::registry::{Benchmark, Suite};

fn dlist(rng: &mut StdRng, n: usize) -> Env {
    let mut st = Env::new();
    st.set("xs", data::double_list(rng, n, -50.0, 50.0));
    st
}

fn two_arrays(rng: &mut StdRng, n: usize) -> Env {
    let mut st = Env::new();
    st.set("xs", data::double_array(rng, n, -10.0, 10.0));
    st.set("ys", data::double_array(rng, n, -10.0, 10.0));
    st.set("n", Value::Int(n as i64));
    st
}

pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "stats/mean_sum",
            suite: Suite::Stats,
            source: r#"
                fn mean_sum(xs: list<double>) -> double {
                    let s: double = 0.0;
                    for (x in xs) { s = s + x; }
                    return s / int_to_double(xs.size());
                }
            "#,
            func: "mean_sum",
            expect_translate: true,
            gen: dlist,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/variance_sums",
            suite: Suite::Stats,
            source: r#"
                fn variance_sums(xs: list<double>) -> double {
                    let sx: double = 0.0;
                    let sxx: double = 0.0;
                    for (x in xs) {
                        sx = sx + x;
                        sxx = sxx + x * x;
                    }
                    let n: double = int_to_double(xs.size());
                    return sxx / n - (sx / n) * (sx / n);
                }
            "#,
            func: "variance_sums",
            expect_translate: true,
            gen: dlist,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/std_error_sums",
            suite: Suite::Stats,
            source: r#"
                fn std_error_sums(xs: list<double>, mu: double) -> double {
                    let sse: double = 0.0;
                    for (x in xs) { sse = sse + (x - mu) * (x - mu); }
                    return sqrt(sse / int_to_double(xs.size()));
                }
            "#,
            func: "std_error_sums",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = dlist(rng, n);
                st.set("mu", Value::Double(0.5));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/l1_norm",
            suite: Suite::Stats,
            source: r#"
                fn l1_norm(xs: list<double>) -> double {
                    let s: double = 0.0;
                    for (x in xs) { s = s + abs(x); }
                    return s;
                }
            "#,
            func: "l1_norm",
            expect_translate: true,
            gen: dlist,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/l2_norm_sq",
            suite: Suite::Stats,
            source: r#"
                fn l2_norm_sq(xs: list<double>) -> double {
                    let s: double = 0.0;
                    for (x in xs) { s = s + x * x; }
                    return s;
                }
            "#,
            func: "l2_norm_sq",
            expect_translate: true,
            gen: dlist,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/range",
            suite: Suite::Stats,
            source: r#"
                fn range(xs: list<double>) -> double {
                    let mn: double = 1000000000.0;
                    let mx: double = -1000000000.0;
                    for (x in xs) {
                        if (x < mn) { mn = x; }
                        if (x > mx) { mx = x; }
                    }
                    return mx - mn;
                }
            "#,
            func: "range",
            expect_translate: true,
            gen: dlist,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/zscore_count",
            suite: Suite::Stats,
            source: r#"
                fn zscore_count(xs: list<double>, mu: double, sigma: double) -> int {
                    let n: int = 0;
                    for (x in xs) {
                        if (abs(x - mu) > 2.0 * sigma) { n = n + 1; }
                    }
                    return n;
                }
            "#,
            func: "zscore_count",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = dlist(rng, n);
                st.set("mu", Value::Double(0.0));
                st.set("sigma", Value::Double(15.0));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/covariance_sums",
            suite: Suite::Stats,
            source: r#"
                fn covariance_sums(xs: array<double>, ys: array<double>, n: int, mx: double, my: double) -> double {
                    let s: double = 0.0;
                    for (let i: int = 0; i < n; i = i + 1) {
                        s = s + (xs[i] - mx) * (ys[i] - my);
                    }
                    return s / int_to_double(n);
                }
            "#,
            func: "covariance_sums",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = two_arrays(rng, n);
                st.set("mx", Value::Double(0.1));
                st.set("my", Value::Double(-0.2));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/hadamard",
            suite: Suite::Stats,
            source: r#"
                fn hadamard(xs: array<double>, ys: array<double>, n: int) -> array<double> {
                    let out: array<double> = new array<double>(n);
                    for (let i: int = 0; i < n; i = i + 1) {
                        out[i] = xs[i] * ys[i];
                    }
                    return out;
                }
            "#,
            func: "hadamard",
            expect_translate: true,
            gen: two_arrays,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/dot_product",
            suite: Suite::Stats,
            source: r#"
                fn dot_product(xs: array<double>, ys: array<double>, n: int) -> double {
                    let d: double = 0.0;
                    for (let i: int = 0; i < n; i = i + 1) {
                        d = d + xs[i] * ys[i];
                    }
                    return d;
                }
            "#,
            func: "dot_product",
            expect_translate: true,
            gen: two_arrays,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/histogram_bins",
            suite: Suite::Stats,
            source: r#"
                fn histogram_bins(xs: list<int>) -> map<int,int> {
                    let bins: map<int,int> = new map<int,int>();
                    for (x in xs) {
                        bins.put(x / 10, bins.get_or(x / 10, 0) + 1);
                    }
                    return bins;
                }
            "#,
            func: "histogram_bins",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = Env::new();
                st.set("xs", data::int_list(rng, n, 0, 99));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/count_above",
            suite: Suite::Stats,
            source: r#"
                fn count_above(xs: list<double>, mu: double) -> int {
                    let n: int = 0;
                    for (x in xs) { if (x > mu) { n = n + 1; } }
                    return n;
                }
            "#,
            func: "count_above",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = dlist(rng, n);
                st.set("mu", Value::Double(0.0));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/log_sum",
            suite: Suite::Stats,
            source: r#"
                fn log_sum(xs: list<double>) -> double {
                    let s: double = 0.0;
                    for (x in xs) { s = s + log(x); }
                    return s;
                }
            "#,
            func: "log_sum",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = Env::new();
                st.set("xs", data::double_list(rng, n, 0.5, 10.0));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/sqrt_sum",
            suite: Suite::Stats,
            source: r#"
                fn sqrt_sum(xs: list<double>) -> double {
                    let s: double = 0.0;
                    for (x in xs) { s = s + sqrt(x); }
                    return s;
                }
            "#,
            func: "sqrt_sum",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = Env::new();
                st.set("xs", data::double_list(rng, n, 0.0, 100.0));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/mad_sum",
            suite: Suite::Stats,
            source: r#"
                fn mad_sum(xs: list<double>, mu: double) -> double {
                    let s: double = 0.0;
                    for (x in xs) { s = s + abs(x - mu); }
                    return s;
                }
            "#,
            func: "mad_sum",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = dlist(rng, n);
                st.set("mu", Value::Double(1.0));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/cube_sum",
            suite: Suite::Stats,
            source: r#"
                fn cube_sum(xs: list<double>) -> double {
                    let s: double = 0.0;
                    for (x in xs) { s = s + x * x * x; }
                    return s;
                }
            "#,
            func: "cube_sum",
            expect_translate: true,
            gen: dlist,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            name: "stats/geo_product",
            suite: Suite::Stats,
            source: r#"
                fn geo_product(xs: list<double>) -> double {
                    let p: double = 1.0;
                    for (x in xs) { p = p * x; }
                    return p;
                }
            "#,
            func: "geo_product",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = Env::new();
                st.set("xs", data::double_list(rng, n, 0.9, 1.1));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            // The Anscombe variance-stabilising transform — a pure
            // per-element map (the Figure 7(a) benchmark).
            name: "stats/anscombe",
            suite: Suite::Stats,
            source: r#"
                fn anscombe(xs: list<double>) -> list<double> {
                    let out: list<double> = new list<double>();
                    for (x in xs) {
                        out.add(2.0 * sqrt(x + 0.375));
                    }
                    return out;
                }
            "#,
            func: "anscombe",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = Env::new();
                st.set("xs", data::double_list(rng, n, 0.0, 255.0));
                st
            },
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            // Convolution with a variable-sized kernel: the inner loop
            // over the kernel cannot be expressed inside a transformer
            // function — the suite's one failure (§7.1).
            name: "stats/convolve",
            suite: Suite::Stats,
            source: r#"
                fn convolve(xs: array<double>, kernel: list<double>, n: int) -> array<double> {
                    let out: array<double> = new array<double>(n);
                    for (let i: int = 0; i < n; i = i + 1) {
                        let acc: double = 0.0;
                        for (k in kernel) {
                            acc = acc + k * xs[i];
                        }
                        out[i] = acc;
                    }
                    return out;
                }
            "#,
            func: "convolve",
            expect_translate: false,
            gen: |rng, n| {
                let mut st = Env::new();
                st.set("xs", data::double_array(rng, n, -1.0, 1.0));
                st.set(
                    "kernel",
                    Value::List(vec![
                        Value::Double(0.25),
                        Value::Double(0.5),
                        Value::Double(0.25),
                    ]),
                );
                st.set("n", Value::Int(n as i64));
                st
            },
            paper_scale: 1_000_000_000,
        },
    ]
}
