//! The Iterative suite (§7.1): PageRank and Logistic-Regression-based
//! classification, manually implemented sequentially. 7 fragments, all
//! translated (Table 1: 7/7). The per-iteration fragments translate; the
//! outer iteration driver stays on the host (as in the paper, where
//! Casper's generated code lacks `cache()` calls — §7.2's 1.3× PageRank
//! gap).

use rand::rngs::StdRng;
use rand::Rng;
use seqlang::env::Env;
use seqlang::value::Value;

use crate::data;
use crate::registry::{Benchmark, Suite};

fn pagerank_state(rng: &mut StdRng, n: usize) -> Env {
    let nodes = (n / 8).max(4);
    let mut st = Env::new();
    st.set("edges", data::edges(rng, n, nodes));
    let ranks: Vec<Value> = (0..nodes).map(|_| Value::Double(1.0)).collect();
    st.set("ranks", Value::Array(ranks));
    let degs: Vec<Value> = (0..nodes)
        .map(|_| Value::Double(rng.gen_range(1.0f64..8.0).floor()))
        .collect();
    st.set("degs", Value::Array(degs));
    st
}

fn logreg_state(rng: &mut StdRng, n: usize) -> Env {
    let mut st = Env::new();
    st.set("samples", data::labeled_points(rng, n));
    st.set("w1", Value::Double(0.1));
    st.set("w2", Value::Double(-0.1));
    st
}

pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        // ---- PageRank: three fragments per iteration. ----
        Benchmark {
            // Contribution scatter: each edge sends rank/degree to its
            // destination — grouped sum keyed by dst.
            name: "iterative/pagerank_contribs",
            suite: Suite::Iterative,
            source: r#"
                struct Edge { src: int, dst: int }
                fn pagerank_contribs(edges: list<Edge>, ranks: array<double>, degs: array<double>) -> map<int,double> {
                    let contribs: map<int,double> = new map<int,double>();
                    for (e in edges) {
                        contribs.put(e.dst,
                            contribs.get_or(e.dst, 0.0) + ranks.get(e.src) / degs.get(e.src));
                    }
                    return contribs;
                }
            "#,
            func: "pagerank_contribs",
            expect_translate: true,
            gen: pagerank_state,
            paper_scale: 2_250_000_000, // the paper's 2.25 B edges
        },
        Benchmark {
            // Rank update: damping applied per node.
            name: "iterative/pagerank_update",
            suite: Suite::Iterative,
            source: r#"
                fn pagerank_update(contrib: array<double>, n: int) -> array<double> {
                    let newranks: array<double> = new array<double>(n);
                    for (let i: int = 0; i < n; i = i + 1) {
                        newranks[i] = 0.15 + 0.85 * contrib[i];
                    }
                    return newranks;
                }
            "#,
            func: "pagerank_update",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = Env::new();
                st.set("contrib", data::double_array(rng, n, 0.0, 3.0));
                st.set("n", Value::Int(n as i64));
                st
            },
            paper_scale: 50_000_000,
        },
        Benchmark {
            // Total rank mass (used for dangling-node correction).
            name: "iterative/pagerank_mass",
            suite: Suite::Iterative,
            source: r#"
                fn pagerank_mass(ranks: array<double>, n: int) -> double {
                    let mass: double = 0.0;
                    for (let i: int = 0; i < n; i = i + 1) {
                        mass = mass + ranks[i];
                    }
                    return mass;
                }
            "#,
            func: "pagerank_mass",
            expect_translate: true,
            gen: |rng, n| {
                let mut st = Env::new();
                st.set("ranks", data::double_array(rng, n, 0.0, 2.0));
                st.set("n", Value::Int(n as i64));
                st
            },
            paper_scale: 50_000_000,
        },
        // ---- Logistic regression: four fragments per iteration. ----
        Benchmark {
            // Gradient accumulation for both weights in one pass.
            name: "iterative/logreg_gradient",
            suite: Suite::Iterative,
            source: r#"
                struct Sample { x1: double, x2: double, label: double }
                fn logreg_gradient(samples: list<Sample>, w1: double, w2: double) -> double {
                    let g1: double = 0.0;
                    let g2: double = 0.0;
                    for (s in samples) {
                        g1 = g1 + (1.0 / (1.0 + exp(0.0 - (w1 * s.x1 + w2 * s.x2))) - s.label) * s.x1;
                        g2 = g2 + (1.0 / (1.0 + exp(0.0 - (w1 * s.x1 + w2 * s.x2))) - s.label) * s.x2;
                    }
                    return g1 + g2;
                }
            "#,
            func: "logreg_gradient",
            expect_translate: true,
            gen: logreg_state,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            // Margin scores for every sample.
            name: "iterative/logreg_scores",
            suite: Suite::Iterative,
            source: r#"
                struct Sample { x1: double, x2: double, label: double }
                fn logreg_scores(samples: list<Sample>, w1: double, w2: double) -> list<double> {
                    let scores: list<double> = new list<double>();
                    for (s in samples) {
                        scores.add(w1 * s.x1 + w2 * s.x2);
                    }
                    return scores;
                }
            "#,
            func: "logreg_scores",
            expect_translate: true,
            gen: logreg_state,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            // Squared-error loss.
            name: "iterative/logreg_loss",
            suite: Suite::Iterative,
            source: r#"
                struct Sample { x1: double, x2: double, label: double }
                fn logreg_loss(samples: list<Sample>, w1: double, w2: double) -> double {
                    let loss: double = 0.0;
                    for (s in samples) {
                        loss = loss + (w1 * s.x1 + w2 * s.x2 - s.label) * (w1 * s.x1 + w2 * s.x2 - s.label);
                    }
                    return loss;
                }
            "#,
            func: "logreg_loss",
            expect_translate: true,
            gen: logreg_state,
            paper_scale: 1_000_000_000,
        },
        Benchmark {
            // Misclassification count.
            name: "iterative/logreg_errors",
            suite: Suite::Iterative,
            source: r#"
                struct Sample { x1: double, x2: double, label: double }
                fn logreg_errors(samples: list<Sample>, w1: double, w2: double) -> int {
                    let errs: int = 0;
                    for (s in samples) {
                        if (w1 * s.x1 + w2 * s.x2 > 0.0 && s.label < 0.5) { errs = errs + 1; }
                    }
                    return errs;
                }
            "#,
            func: "logreg_errors",
            expect_translate: true,
            gen: logreg_state,
            paper_scale: 1_000_000_000,
        },
    ]
}
