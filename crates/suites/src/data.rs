//! Deterministic synthetic dataset generators.
//!
//! The paper's experiments ran over 25–75 GB HDFS files; our generators
//! produce laptop-scale datasets with the same *distributional* knobs the
//! evaluation varies (keyword skew for StringMatch, key cardinality for
//! WordCount, selectivities for TPC-H) and the cluster simulator scales
//! the measured volumes up to paper-sized record counts.

use rand::rngs::StdRng;
use rand::Rng;
use seqlang::value::{StructLayout, Value};
use std::sync::Arc;

/// Words drawn from a Zipf-flavoured vocabulary.
pub fn words(rng: &mut StdRng, n: usize, vocab: usize) -> Value {
    let out: Vec<Value> = (0..n)
        .map(|_| {
            // Squaring biases towards low ranks — a cheap Zipf stand-in.
            let r: f64 = rng.gen();
            let idx = ((r * r) * vocab as f64) as usize;
            Value::str(format!("word{idx}"))
        })
        .collect();
    Value::List(out)
}

/// Text with a controllable fraction of occurrences of `key` — the skew
/// knob of Figure 8.
pub fn skewed_text(rng: &mut StdRng, n: usize, key: &str, match_fraction: f64) -> Value {
    let out: Vec<Value> = (0..n)
        .map(|i| {
            if rng.gen_bool(match_fraction) {
                Value::str(key)
            } else {
                Value::str(format!("filler{i}"))
            }
        })
        .collect();
    Value::List(out)
}

pub fn int_list(rng: &mut StdRng, n: usize, lo: i64, hi: i64) -> Value {
    Value::List((0..n).map(|_| Value::Int(rng.gen_range(lo..=hi))).collect())
}

pub fn int_array(rng: &mut StdRng, n: usize, lo: i64, hi: i64) -> Value {
    Value::Array((0..n).map(|_| Value::Int(rng.gen_range(lo..=hi))).collect())
}

pub fn double_list(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Value {
    Value::List(
        (0..n)
            .map(|_| Value::Double(rng.gen_range(lo..hi)))
            .collect(),
    )
}

pub fn double_array(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Value {
    Value::Array(
        (0..n)
            .map(|_| Value::Double(rng.gen_range(lo..hi)))
            .collect(),
    )
}

/// An `rows × cols` integer matrix.
pub fn matrix(rng: &mut StdRng, rows: usize, cols: usize, lo: i64, hi: i64) -> Value {
    Value::Array((0..rows).map(|_| int_array(rng, cols, lo, hi)).collect())
}

/// RGB pixel structs (values 0–255) for the Phoenix histogram and Fiji
/// kernels.
pub fn pixels(rng: &mut StdRng, n: usize) -> Value {
    let layout = pixel_layout();
    Value::List(
        (0..n)
            .map(|_| {
                Value::Struct(
                    layout.clone(),
                    vec![
                        Value::Int(rng.gen_range(0..256)),
                        Value::Int(rng.gen_range(0..256)),
                        Value::Int(rng.gen_range(0..256)),
                    ],
                )
            })
            .collect(),
    )
}

pub fn pixel_layout() -> Arc<StructLayout> {
    StructLayout::new("Pixel", vec!["r".into(), "g".into(), "b".into()])
}

/// 2-D points for Linear Regression / KMeans.
pub fn points(rng: &mut StdRng, n: usize) -> Value {
    let layout = point_layout();
    Value::List(
        (0..n)
            .map(|_| {
                let x: f64 = rng.gen_range(-10.0..10.0);
                // Points near a line with noise, so regression is sensible.
                let y = 3.0 * x + 1.0 + rng.gen_range(-2.0..2.0);
                Value::Struct(layout.clone(), vec![Value::Double(x), Value::Double(y)])
            })
            .collect(),
    )
}

pub fn point_layout() -> Arc<StructLayout> {
    StructLayout::new("Point", vec!["x".into(), "y".into()])
}

/// Graph edges `(src, dst)` with preferential-attachment flavour —
/// PageRank input.
pub fn edges(rng: &mut StdRng, n_edges: usize, n_nodes: usize) -> Value {
    let layout = edge_layout();
    Value::List(
        (0..n_edges)
            .map(|_| {
                let src = rng.gen_range(0..n_nodes as i64);
                let r: f64 = rng.gen();
                let dst = ((r * r) * n_nodes as f64) as i64;
                Value::Struct(layout.clone(), vec![Value::Int(src), Value::Int(dst)])
            })
            .collect(),
    )
}

pub fn edge_layout() -> Arc<StructLayout> {
    StructLayout::new("Edge", vec!["src".into(), "dst".into()])
}

/// Labelled feature vectors (2-D) for logistic regression.
pub fn labeled_points(rng: &mut StdRng, n: usize) -> Value {
    let layout = StructLayout::new("Sample", vec!["x1".into(), "x2".into(), "label".into()]);
    Value::List(
        (0..n)
            .map(|_| {
                let x1: f64 = rng.gen_range(-5.0..5.0);
                let x2: f64 = rng.gen_range(-5.0..5.0);
                let label = if x1 + x2 > 0.0 { 1.0 } else { 0.0 };
                Value::Struct(
                    layout.clone(),
                    vec![Value::Double(x1), Value::Double(x2), Value::Double(label)],
                )
            })
            .collect(),
    )
}

/// Wikipedia-like page-view log lines: (project, page, views) structs.
pub fn page_views(rng: &mut StdRng, n: usize) -> Value {
    let layout = StructLayout::new(
        "View",
        vec!["project".into(), "page".into(), "views".into()],
    );
    let projects = ["en", "de", "fr", "es", "ja"];
    Value::List(
        (0..n)
            .map(|_| {
                let p = projects[rng.gen_range(0..projects.len())];
                let page = rng.gen_range(0..5000);
                Value::Struct(
                    layout.clone(),
                    vec![
                        Value::str(p),
                        Value::str(format!("page{page}")),
                        Value::Int(rng.gen_range(1..1000)),
                    ],
                )
            })
            .collect(),
    )
}

/// Web-server access-log events for the sessionization suite: user id,
/// HTTP status, payload bytes, and hour-of-day.
pub fn log_events(rng: &mut StdRng, n: usize) -> Value {
    let layout = StructLayout::new(
        "Event",
        vec![
            "user".into(),
            "status".into(),
            "bytes".into(),
            "hour".into(),
        ],
    );
    Value::List(
        (0..n)
            .map(|_| {
                // Squared draw skews towards low user ranks, so a few
                // users dominate the log — the shape session analyses see.
                let r: f64 = rng.gen();
                let user = ((r * r) * 40.0) as usize;
                let status = *[200, 200, 200, 301, 404, 500]
                    .get(rng.gen_range(0..6))
                    .unwrap();
                Value::Struct(
                    layout.clone(),
                    vec![
                        Value::str(format!("user{user}")),
                        Value::Int(status),
                        Value::Int(rng.gen_range(0..5000)),
                        Value::Int(rng.gen_range(0..24)),
                    ],
                )
            })
            .collect(),
    )
}

/// Ad-click records for the clickstream suite: campaign, spend, and
/// whether the click converted.
pub fn clicks(rng: &mut StdRng, n: usize) -> Value {
    let layout = StructLayout::new(
        "Click",
        vec!["campaign".into(), "cost".into(), "purchase".into()],
    );
    Value::List(
        (0..n)
            .map(|_| {
                Value::Struct(
                    layout.clone(),
                    vec![
                        Value::str(format!("camp{}", rng.gen_range(0..20))),
                        Value::Double(rng.gen_range(0.05..5.0)),
                        Value::Bool(rng.gen_bool(0.08)),
                    ],
                )
            })
            .collect(),
    )
}

/// Review records for the Yelp-kids selection benchmark.
pub fn reviews(rng: &mut StdRng, n: usize) -> Value {
    let layout = StructLayout::new(
        "Review",
        vec!["business".into(), "stars".into(), "kids_ok".into()],
    );
    Value::List(
        (0..n)
            .map(|i| {
                Value::Struct(
                    layout.clone(),
                    vec![
                        Value::str(format!("biz{}", i % 500)),
                        Value::Int(rng.gen_range(1..=5)),
                        Value::Bool(rng.gen_bool(0.3)),
                    ],
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn generators_produce_requested_sizes() {
        let mut r = rng();
        assert_eq!(words(&mut r, 100, 50).elements().unwrap().len(), 100);
        assert_eq!(pixels(&mut r, 10).elements().unwrap().len(), 10);
        assert_eq!(matrix(&mut r, 4, 6, 0, 9).elements().unwrap().len(), 4);
    }

    #[test]
    fn skew_controls_match_fraction() {
        let mut r = rng();
        let text = skewed_text(&mut r, 10_000, "needle", 0.95);
        let hits = text
            .elements()
            .unwrap()
            .iter()
            .filter(|w| w.as_str() == Some("needle"))
            .count();
        assert!(hits > 9_000 && hits < 10_000);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = words(&mut rng(), 50, 10);
        let b = words(&mut rng(), 50, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn struct_fields_accessible() {
        let mut r = rng();
        let ps = points(&mut r, 5);
        let first = &ps.elements().unwrap()[0];
        assert!(first.field("x").is_some());
        assert!(first.field("y").is_some());
    }
}
