//! Executable plans: verified summaries compiled onto the engine.
//!
//! A [`CompiledPlan`] lowers each output binding's `MrExpr` pipeline
//! **once at construction** into a tree of fused stages: λ lookups are
//! resolved to frame slots by [`casper_ir::compile`]'s shared lowering
//! (the same one `CompiledSummary` screens candidates with, so the two
//! cannot diverge), and chains of narrow map operators collapse into a
//! single per-partition pass over the engine's `mapPartitions` primitive.
//! Per-record work is then a closure call over a small register frame —
//! no `Env::clone`, no name hashing, no tree walk, no materialized
//! dataset per operator.
//!
//! Four execution modes coexist:
//!
//! * [`CompiledPlan::execute`] — the fused, compiled data plane
//!   (default), running over buffer-backed partitions
//!   ([`mapreduce::BufRdd`]): records live in contiguous [`ValueBuf`]s,
//!   narrow passes copy cells between buffers instead of materializing
//!   boxed `Value`s, and the shuffle moves raw byte ranges;
//! * [`CompiledPlan::execute_boxed`] — the same fused stages over boxed
//!   `Vec<(Value, Value)>` partitions: the differential golden reference
//!   for the buffered plane;
//! * [`CompiledPlan::execute_compiled_unfused`] — compiled λs but one
//!   engine stage per operator (isolates the fusion win);
//! * [`CompiledPlan::execute_interpreted`] — the tree-walking golden
//!   reference: one stage per operator, `IrExpr::eval` over a cloned
//!   `Env` per record. Fused execution is result-identical to it on
//!   every pipeline, including error outcomes.
//!
//! Iterative drivers pass a [`PlanCache`] to
//! [`CompiledPlan::execute_cached`]: stage cut-points whose input
//! variables are unchanged since the previous execution are served from
//! the cache, recording a zero-cost `cache[...]` stage the cluster
//! simulator does not charge.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use casper_ir::bytecode::Engine;
use casper_ir::compile::{CompiledMapLambda, CompiledReduceLambda};
use casper_ir::expr::IrExpr;
use casper_ir::lambda::{MapLambda, ReduceLambda};
use casper_ir::mr::{DataShape, DataSource, MrExpr, OutputBinding, OutputKind, ProgramSummary};
use mapreduce::bufrdd::{rows_per_partition, BufRdd, PassStats};
use mapreduce::rdd::{PairRdd, Rdd};
use mapreduce::{Context, StageKind, StageStats};
use seqlang::buf::{RecordArena, ValueBuf, INTERN_MIN_PARTITION_ROWS};
use seqlang::env::Env;
use seqlang::error::{Error, Result};
use seqlang::value::Value;
use verifier::CaProperties;

/// A record frame flowing into a map λ: one slot per parameter.
type Frame = Vec<Value>;

/// One stage of a fused pipeline. Narrow chains are pre-collapsed; the
/// `id` indexes the plan's dependency table and keys the [`PlanCache`].
#[derive(Clone)]
enum FusedStage {
    /// A bare data source feeding a shuffle or join (already key/value
    /// shaped for `Indexed` data — the zipWithIndex ingestion of
    /// Appendix C).
    Source { id: usize, src: DataSource },
    /// A single fused per-partition pass: records from `input` flow
    /// through the whole chain of compiled map λs with no intermediate
    /// materialization.
    Narrow {
        id: usize,
        input: NarrowInput,
        maps: Vec<Arc<CompiledMapLambda>>,
    },
    /// Shuffle boundary: `reduceByKey` when the λr is CA (§6.3),
    /// `groupByKey` + ordered fold otherwise.
    Wide {
        id: usize,
        input: Box<FusedStage>,
        combiner: Arc<CompiledReduceLambda>,
        props: CaProperties,
    },
    Join {
        id: usize,
        left: Box<FusedStage>,
        right: Box<FusedStage>,
    },
}

/// What feeds a fused narrow chain: raw source records or the key/value
/// output of an upstream wide stage. A source input keeps its own stage
/// id so the ingested frames are a cacheable cut-point even when the
/// chain's λ free variables change between executions (the iterative
/// case: ranks change, the edge list does not).
#[derive(Clone)]
enum NarrowInput {
    Source { id: usize, src: DataSource },
    Stage(Box<FusedStage>),
}

impl FusedStage {
    fn id(&self) -> usize {
        match self {
            FusedStage::Source { id, .. }
            | FusedStage::Narrow { id, .. }
            | FusedStage::Wide { id, .. }
            | FusedStage::Join { id, .. } => *id,
        }
    }

    /// Stage kind + label used for cache-hit markers.
    fn cache_label(&self) -> (StageKind, String) {
        match self {
            FusedStage::Source { .. } => (StageKind::Input, "parallelize".into()),
            FusedStage::Narrow { maps, .. } => {
                (StageKind::Map, format!("fused[mapx{}]", maps.len()))
            }
            FusedStage::Wide { props, .. } => (
                StageKind::Shuffle,
                if props.both() {
                    "reduceByKey".into()
                } else {
                    "groupByKey".into()
                },
            ),
            FusedStage::Join { .. } => (StageKind::Join, "join".into()),
        }
    }
}

/// Cross-execution memoization of fused-stage results. Entries are keyed
/// by stage id and validated by a content hash of every state variable
/// the stage's subtree reads (source collections and λ free variables);
/// iterative drivers that mutate only scalars between executions re-use
/// the heavy ingest/shuffle cut-points for free.
#[derive(Default)]
pub struct PlanCache {
    /// The plan this cache's entries belong to — stage ids are only
    /// meaningful within one lowering, so a cache handed to a different
    /// plan is cleared instead of serving the wrong plan's results.
    owner: Option<u64>,
    entries: HashMap<usize, (u64, BufRdd)>,
    /// Ingested source frames feeding fused narrow chains (width-arity
    /// buffers).
    frames: HashMap<usize, (u64, BufRdd)>,
    /// Cross-execution memo of per-variable content hashes, validated by
    /// the env's `(identity, write stamp)` pair: iterative drivers mutate
    /// a handful of variables per iteration, and only those are
    /// re-hashed — the heavy unchanged collections (an edge list, say)
    /// are proven unchanged in O(1) instead of re-hashed in O(n).
    var_memo: HashMap<String, (u64, u64, u64)>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Stage lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Stage lookups that had to recompute (cold or invalidated).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn lookup(&mut self, id: usize, fp: u64) -> Option<BufRdd> {
        match self.entries.get(&id) {
            Some((stored, rdd)) if *stored == fp => {
                self.hits += 1;
                Some(rdd.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    fn store(&mut self, id: usize, fp: u64, rdd: BufRdd) {
        self.entries.insert(id, (fp, rdd));
    }

    fn lookup_frames(&mut self, id: usize, fp: u64) -> Option<BufRdd> {
        match self.frames.get(&id) {
            Some((stored, rdd)) if *stored == fp => {
                self.hits += 1;
                Some(rdd.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    fn store_frames(&mut self, id: usize, fp: u64, rdd: BufRdd) {
        self.frames.insert(id, (fp, rdd));
    }

    /// Bind the cache to `plan_id`, dropping every entry if it currently
    /// belongs to a different plan.
    fn rebind(&mut self, plan_id: u64) {
        if self.owner != Some(plan_id) {
            self.entries.clear();
            self.frames.clear();
            self.owner = Some(plan_id);
        }
    }
}

/// Per-execution cache context: the bound [`PlanCache`] plus a memo of
/// per-variable content hashes, so each state variable is hashed at most
/// once per execution no matter how many stage footprints it appears in —
/// and, via the cache's cross-execution [`PlanCache::var_memo`], at most
/// once per *mutation*: a variable whose env write stamp is unchanged
/// since a previous execution re-uses its stored hash without touching
/// its contents.
struct CacheCtx<'a> {
    cache: &'a mut PlanCache,
    var_hashes: HashMap<String, u64>,
}

impl CacheCtx<'_> {
    /// Fingerprint of every state variable in `deps`.
    fn fingerprint(&mut self, state: &Env, deps: &[String]) -> u64 {
        let mut h = DefaultHasher::new();
        for name in deps {
            name.hash(&mut h);
            let vh = match self.var_hashes.get(name) {
                Some(vh) => *vh,
                None => {
                    let vh = Self::var_hash(&mut self.cache.var_memo, state, name);
                    self.var_hashes.insert(name.clone(), vh);
                    vh
                }
            };
            vh.hash(&mut h);
        }
        h.finish()
    }

    /// Content hash of one variable, served from the cross-execution memo
    /// when the env's `(identity, write stamp)` pair proves it unchanged.
    fn var_hash(memo: &mut HashMap<String, (u64, u64, u64)>, state: &Env, name: &str) -> u64 {
        let id = state.identity();
        let stamp = state.write_stamp(name);
        if let Some((mid, mstamp, mhash)) = memo.get(name) {
            if *mid == id && *mstamp == stamp {
                return *mhash;
            }
        }
        let mut vh = DefaultHasher::new();
        match state.get(name) {
            Some(v) => {
                1u8.hash(&mut vh);
                v.hash(&mut vh);
            }
            None => 0u8.hash(&mut vh),
        }
        let vh = vh.finish();
        memo.insert(name.to_string(), (id, stamp, vh));
        vh
    }
}

/// A summary compiled against the engine, with the verifier's algebraic
/// facts steering primitive selection (§6.3: `reduceByKey` only for
/// commutative-associative transformers, otherwise `groupByKey`).
#[derive(Clone)]
pub struct CompiledPlan {
    pub summary: ProgramSummary,
    /// Per-reduce CA properties, in pipeline order.
    pub reduce_props: Vec<CaProperties>,
    /// One fused pipeline per output binding, lowered at construction.
    pipelines: Vec<FusedStage>,
    /// Per-stage-id state variables the stage's subtree reads (sources +
    /// λ free variables) — the cache-validation footprint.
    stage_deps: Vec<Vec<String>>,
    /// Identity of this lowering: [`PlanCache`]s are bound to it, so a
    /// cache cannot serve one plan's results to another. Clones share
    /// the id (they share the lowering).
    plan_id: u64,
}

static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(1);

impl CompiledPlan {
    /// Lower `summary` into fused, slot-resolved pipelines with the
    /// default λ engine (the bytecode VM). This is the plan-compile step:
    /// all per-record name resolution happens here, exactly once.
    pub fn new(summary: ProgramSummary, reduce_props: Vec<CaProperties>) -> CompiledPlan {
        CompiledPlan::with_engine(summary, reduce_props, Engine::default())
    }

    /// Like [`CompiledPlan::new`], but lowering every map/reduce λ for
    /// `engine` — the closure-tree variant is the differential reference
    /// the bytecode bench compares against.
    pub fn with_engine(
        summary: ProgramSummary,
        reduce_props: Vec<CaProperties>,
        engine: Engine,
    ) -> CompiledPlan {
        let mut builder = PlanBuilder {
            props: &reduce_props,
            engine,
            next_id: 0,
            deps: Vec::new(),
        };
        let pipelines = summary
            .bindings
            .iter()
            .map(|b| {
                let mut reduce_idx = 0usize;
                builder.compile(&b.expr, &mut reduce_idx)
            })
            .collect();
        let stage_deps = builder.deps;
        CompiledPlan {
            summary,
            reduce_props,
            stage_deps,
            pipelines,
            plan_id: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Execute the plan on the engine against a program state, returning
    /// the computed output variables. Statistics accumulate in `ctx`.
    /// Runs the fused, compiled data plane.
    pub fn execute(&self, ctx: &Arc<Context>, state: &Env) -> Result<Env> {
        self.execute_inner(ctx, state, &mut None)
    }

    /// Like [`execute`](CompiledPlan::execute), but serving unchanged
    /// stage cut-points from `cache` and refreshing it with this
    /// execution's results — the iterative-driver entry point.
    pub fn execute_cached(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        cache: &mut PlanCache,
    ) -> Result<Env> {
        cache.rebind(self.plan_id);
        let mut opt = Some(CacheCtx {
            cache,
            var_hashes: HashMap::new(),
        });
        self.execute_inner(ctx, state, &mut opt)
    }

    fn execute_inner(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        cache: &mut Option<CacheCtx<'_>>,
    ) -> Result<Env> {
        let mut out = Env::new();
        for (binding, stage) in self.summary.bindings.iter().zip(&self.pipelines) {
            let pairs = self.run_fused(ctx, state, stage, cache)?;
            bind_outputs(binding, &pairs.collect_sorted(), state, &mut out)?;
        }
        Ok(out)
    }

    /// Execute with compiled λs but **no fusion**: one engine stage per
    /// operator, intermediate datasets materialized — the ablation
    /// mid-point between the interpreted executor and the fused plane.
    pub fn execute_compiled_unfused(&self, ctx: &Arc<Context>, state: &Env) -> Result<Env> {
        let mut out = Env::new();
        for (binding, stage) in self.summary.bindings.iter().zip(&self.pipelines) {
            let pairs = self.run_unfused(ctx, state, stage)?;
            bind_outputs(binding, &pairs.collect_sorted(), state, &mut out)?;
        }
        Ok(out)
    }

    /// Execute with the tree-walking interpreter: one engine stage per
    /// operator, `IrExpr::eval` over a cloned `Env` per record. This is
    /// the golden reference the fused plane is differentially tested
    /// against; it shares output reconstruction and shuffle machinery, so
    /// outputs (and error outcomes) are identical by construction of the
    /// tests, not by sharing the hot path.
    pub fn execute_interpreted(&self, ctx: &Arc<Context>, state: &Env) -> Result<Env> {
        let mut out = Env::new();
        for binding in &self.summary.bindings {
            let mut reduce_idx = 0usize;
            let pairs = self.run_interpreted(ctx, state, &binding.expr, &mut reduce_idx)?;
            bind_outputs(binding, &pairs.collect_sorted(), state, &mut out)?;
        }
        Ok(out)
    }

    /// Execute the same fused pipelines on the boxed-`Value` data plane —
    /// the differential golden reference for the buffered executor. Every
    /// record is a heap `Vec<Value>` frame and every emission a cloned
    /// pair, exactly as the plane worked before the columnar rework; no
    /// caching, so results always come from a fresh run.
    pub fn execute_boxed(&self, ctx: &Arc<Context>, state: &Env) -> Result<Env> {
        let mut out = Env::new();
        for (binding, stage) in self.summary.bindings.iter().zip(&self.pipelines) {
            let pairs = self.run_fused_boxed(ctx, state, stage)?;
            bind_outputs(binding, &pairs.collect_sorted(), state, &mut out)?;
        }
        Ok(out)
    }

    /// Execute one fused stage on boxed `Value`s (no cache) — see
    /// [`execute_boxed`](CompiledPlan::execute_boxed).
    fn run_fused_boxed(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        stage: &FusedStage,
    ) -> Result<PairRdd<Value, Value>> {
        match stage {
            FusedStage::Source { src, .. } => ingest_pairs(ctx, state, src),
            FusedStage::Narrow { input, maps, .. } => {
                let label = format!("fused[mapx{}]", maps.len());
                match input {
                    NarrowInput::Source { src, .. } => {
                        let frames = Rdd::parallelize(ctx, source_frames(state, src)?);
                        frames.map_partitions(&label, |part: &[Frame]| {
                            let mut out = Vec::with_capacity(part.len());
                            let mut cur = Vec::new();
                            let mut next = Vec::new();
                            for row in part {
                                cur.clear();
                                maps[0].apply_into(row, state, &mut cur)?;
                                chain_maps(&maps[1..], state, &mut cur, &mut next)?;
                                out.append(&mut cur);
                            }
                            Ok(out)
                        })
                    }
                    NarrowInput::Stage(inner) => {
                        let pairs = self.run_fused_boxed(ctx, state, inner)?;
                        pairs.map_partitions(&label, |part: &[(Value, Value)]| {
                            let mut out = Vec::with_capacity(part.len());
                            let mut cur = Vec::new();
                            let mut next = Vec::new();
                            for (k, v) in part {
                                cur.clear();
                                cur.push((k.clone(), v.clone()));
                                chain_maps(maps, state, &mut cur, &mut next)?;
                                out.append(&mut cur);
                            }
                            Ok(out)
                        })
                    }
                }
            }
            FusedStage::Wide {
                input,
                combiner,
                props,
                ..
            } => {
                let pairs = self.run_fused_boxed(ctx, state, input)?;
                run_wide(&pairs, combiner, *props, state)
            }
            FusedStage::Join { left, right, .. } => {
                let l = self.run_fused_boxed(ctx, state, left)?;
                let r = self.run_fused_boxed(ctx, state, right)?;
                Ok(join_pairs(&l, &r))
            }
        }
    }

    /// Ingest a source's λ frames into width-`arity` partition buffers,
    /// serving them from the cache when the source collection is
    /// unchanged — the cut-point that makes iterative plans stop
    /// re-running their input pipeline.
    fn ingest_frames(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        src_id: usize,
        src: &DataSource,
        cache: &mut Option<CacheCtx<'_>>,
    ) -> Result<BufRdd> {
        let fp = cache
            .as_mut()
            .map(|cc| cc.fingerprint(state, &self.stage_deps[src_id]));
        if let (Some(cc), Some(fp)) = (cache.as_mut(), fp) {
            if let Some(stored) = cc.cache.lookup_frames(src_id, fp) {
                let rdd = stored.bind_context(ctx);
                ctx.record_stage(StageStats::cache_hit(
                    StageKind::Input,
                    "cache[parallelize]",
                    rdd.count(),
                ));
                return Ok(rdd);
            }
        }
        let width = src.shape.arity();
        let frames = BufRdd::from_built_partitions(ctx, width, source_frame_bufs(ctx, state, src)?);
        if let (Some(cc), Some(fp)) = (cache.as_mut(), fp) {
            cc.cache.store_frames(src_id, fp, frames.clone());
        }
        Ok(frames)
    }

    /// Execute one fused stage on the buffered data plane, consulting and
    /// refreshing the cache. Records never leave their partition buffer
    /// except to cross a shuffle; λs read rows through borrowed
    /// [`seqlang::buf::ValueRef`] views and write emissions straight into
    /// the output buffer.
    fn run_fused(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        stage: &FusedStage,
        cache: &mut Option<CacheCtx<'_>>,
    ) -> Result<BufRdd> {
        let fp = cache
            .as_mut()
            .map(|cc| cc.fingerprint(state, &self.stage_deps[stage.id()]));
        if let (Some(cc), Some(fp)) = (cache.as_mut(), fp) {
            if let Some(stored) = cc.cache.lookup(stage.id(), fp) {
                let rdd = stored.bind_context(ctx);
                let (kind, label) = stage.cache_label();
                ctx.record_stage(StageStats::cache_hit(
                    kind,
                    format!("cache[{label}]"),
                    rdd.count(),
                ));
                return Ok(rdd);
            }
        }
        let result = match stage {
            FusedStage::Source { src, .. } => ingest_pairs_buf(ctx, state, src)?,
            FusedStage::Narrow { input, maps, .. } => {
                let label = format!("fused[mapx{}]", maps.len());
                // An upstream wide/join stage produces width-2 pair
                // buffers, which ARE the `[k, v]` frames the next λ
                // binds — no repacking at the seam.
                let frames = match input {
                    NarrowInput::Source { id: src_id, src } => {
                        self.ingest_frames(ctx, state, *src_id, src, cache)?
                    }
                    NarrowInput::Stage(inner) => self.run_fused(ctx, state, inner, cache)?,
                };
                frames.map_partitions(&label, |part: &ValueBuf| {
                    let mut out = ValueBuf::with_capacity(2, part.len());
                    out.set_string_interning(part.len() >= INTERN_MIN_PARTITION_ROWS);
                    let mut arena = RecordArena::new();
                    if let [only] = &maps[..] {
                        for row in 0..part.len() {
                            only.apply_into_buf(part, row, state, &mut out, &mut arena)?;
                        }
                        Ok((
                            out,
                            PassStats {
                                allocs: arena.allocs,
                                arena_hwm_bytes: 0,
                            },
                        ))
                    } else {
                        // Chain per record through two scratch buffers,
                        // cleared between records so their footprint stays
                        // bounded by the widest single record.
                        let mut cur = ValueBuf::new(2);
                        let mut next = ValueBuf::new(2);
                        for row in 0..part.len() {
                            cur.clear();
                            maps[0].apply_into_buf(part, row, state, &mut cur, &mut arena)?;
                            for m in &maps[1..] {
                                next.clear();
                                for r in 0..cur.len() {
                                    m.apply_into_buf(&cur, r, state, &mut next, &mut arena)?;
                                }
                                std::mem::swap(&mut cur, &mut next);
                            }
                            for r in 0..cur.len() {
                                out.copy_row_from(&cur, r);
                            }
                        }
                        Ok((
                            out,
                            PassStats {
                                allocs: arena.allocs,
                                arena_hwm_bytes: cur.hwm_bytes().max(next.hwm_bytes()),
                            },
                        ))
                    }
                })?
            }
            FusedStage::Wide {
                input,
                combiner,
                props,
                ..
            } => {
                let pairs = self.run_fused(ctx, state, input, cache)?;
                if props.both() {
                    pairs.try_reduce_by_key(combiner.fast_combine(), |a, b| {
                        combiner.combine(a, b, state)
                    })?
                } else {
                    pairs.try_group_fold(|a, b| combiner.combine(a, b, state))?
                }
            }
            FusedStage::Join { left, right, .. } => {
                let l = self.run_fused(ctx, state, left, cache)?;
                let r = self.run_fused(ctx, state, right, cache)?;
                l.join_pairs(&r)
            }
        };
        if let (Some(cc), Some(fp)) = (cache.as_mut(), fp) {
            cc.cache.store(stage.id(), fp, result.clone());
        }
        Ok(result)
    }

    /// Per-operator execution with compiled λs (no fusion).
    fn run_unfused(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        stage: &FusedStage,
    ) -> Result<PairRdd<Value, Value>> {
        match stage {
            FusedStage::Source { src, .. } => ingest_pairs(ctx, state, src),
            FusedStage::Narrow { input, maps, .. } => {
                let mut frames: Rdd<Frame> = match input {
                    NarrowInput::Source { src, .. } => {
                        Rdd::parallelize(ctx, source_frames(state, src)?)
                    }
                    NarrowInput::Stage(inner) => {
                        let pairs = self.run_unfused(ctx, state, inner)?;
                        pairs.map(|(k, v)| vec![k.clone(), v.clone()])
                    }
                };
                let mut idx = 0usize;
                loop {
                    let m = &maps[idx];
                    let pairs = frames.map_partitions("flatMapToPair", |part: &[Frame]| {
                        let mut out = Vec::with_capacity(part.len());
                        for row in part {
                            m.apply_into(row, state, &mut out)?;
                        }
                        Ok(out)
                    })?;
                    idx += 1;
                    if idx == maps.len() {
                        return Ok(pairs);
                    }
                    frames = pairs.map(|(k, v)| vec![k.clone(), v.clone()]);
                }
            }
            FusedStage::Wide {
                input,
                combiner,
                props,
                ..
            } => {
                let pairs = self.run_unfused(ctx, state, input)?;
                run_wide(&pairs, combiner, *props, state)
            }
            FusedStage::Join { left, right, .. } => {
                let l = self.run_unfused(ctx, state, left)?;
                let r = self.run_unfused(ctx, state, right)?;
                Ok(join_pairs(&l, &r))
            }
        }
    }

    /// Recursively execute one pipeline stage with the tree-walking
    /// interpreter, producing key/value pairs.
    fn run_interpreted(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        expr: &MrExpr,
        reduce_idx: &mut usize,
    ) -> Result<PairRdd<Value, Value>> {
        match expr {
            MrExpr::Data(src) => {
                if src.shape != DataShape::Indexed {
                    return Err(Error::runtime(
                        "bare non-indexed data source reached codegen without a map",
                    ));
                }
                let rows = source_rows(state, &src.var, src.shape)?;
                let rdd: Rdd<Value> = Rdd::parallelize(ctx, rows);
                Ok(rdd.map_to_pair(|row| match row {
                    Value::Tuple(kv) if kv.len() == 2 => (kv[0].clone(), kv[1].clone()),
                    other => (Value::Unit, other.clone()),
                }))
            }
            MrExpr::Map(inner, lambda) => match &**inner {
                MrExpr::Data(src) => {
                    let rows = source_rows(state, &src.var, src.shape)?;
                    let rdd: Rdd<Value> = Rdd::parallelize(ctx, rows);
                    apply_map(&rdd, lambda, state, src.shape.arity())
                }
                _ => {
                    let upstream = self.run_interpreted(ctx, state, inner, reduce_idx)?;
                    let as_rows: Rdd<Value> =
                        upstream.map(|(k, v)| Value::Tuple(vec![k.clone(), v.clone()]));
                    apply_map(&as_rows, lambda, state, 2)
                }
            },
            MrExpr::Reduce(inner, lambda) => {
                let upstream = self.run_interpreted(ctx, state, inner, reduce_idx)?;
                let props = self
                    .reduce_props
                    .get(*reduce_idx)
                    .copied()
                    .unwrap_or(CaProperties {
                        commutative: false,
                        associative: false,
                    });
                *reduce_idx += 1;
                apply_reduce(&upstream, lambda, state, props)
            }
            MrExpr::Join(l, r) => {
                let left = self.run_interpreted(ctx, state, l, reduce_idx)?;
                let right = self.run_interpreted(ctx, state, r, reduce_idx)?;
                Ok(join_pairs(&left, &right))
            }
        }
    }
}

/// Lowers `MrExpr` pipelines to fused stages, assigning stage ids and
/// accumulating the per-stage dependency footprints.
struct PlanBuilder<'a> {
    props: &'a [CaProperties],
    engine: Engine,
    next_id: usize,
    deps: Vec<Vec<String>>,
}

impl PlanBuilder<'_> {
    fn fresh_id(&mut self, deps: Vec<String>) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        let mut deps = deps;
        deps.sort();
        deps.dedup();
        self.deps.push(deps);
        id
    }

    fn compile(&mut self, expr: &MrExpr, reduce_idx: &mut usize) -> FusedStage {
        match expr {
            MrExpr::Data(src) => {
                let id = self.fresh_id(vec![src.var.clone()]);
                FusedStage::Source {
                    id,
                    src: src.clone(),
                }
            }
            MrExpr::Map(inner, lambda) => {
                let compiled = Arc::new(CompiledMapLambda::compile_with(lambda, self.engine));
                let lambda_deps: Vec<String> = compiled.free_vars().to_vec();
                match self.compile(inner, reduce_idx) {
                    // Collapse consecutive narrow operators into one pass.
                    FusedStage::Narrow {
                        id,
                        input,
                        mut maps,
                    } => {
                        let mut deps = self.deps[id].clone();
                        deps.extend(lambda_deps);
                        let id = self.fresh_id(deps);
                        maps.push(compiled);
                        FusedStage::Narrow { id, input, maps }
                    }
                    FusedStage::Source { id: src_id, src } => {
                        let mut deps = self.deps[src_id].clone();
                        deps.extend(lambda_deps);
                        let id = self.fresh_id(deps);
                        FusedStage::Narrow {
                            id,
                            input: NarrowInput::Source { id: src_id, src },
                            maps: vec![compiled],
                        }
                    }
                    wide => {
                        let mut deps = self.deps[wide.id()].clone();
                        deps.extend(lambda_deps);
                        let id = self.fresh_id(deps);
                        FusedStage::Narrow {
                            id,
                            input: NarrowInput::Stage(Box::new(wide)),
                            maps: vec![compiled],
                        }
                    }
                }
            }
            MrExpr::Reduce(inner, lambda) => {
                let input = self.compile(inner, reduce_idx);
                let props = self
                    .props
                    .get(*reduce_idx)
                    .copied()
                    .unwrap_or(CaProperties {
                        commutative: false,
                        associative: false,
                    });
                *reduce_idx += 1;
                let combiner = Arc::new(CompiledReduceLambda::compile_with(lambda, self.engine));
                let mut deps = self.deps[input.id()].clone();
                deps.extend(combiner.free_vars().to_vec());
                let id = self.fresh_id(deps);
                FusedStage::Wide {
                    id,
                    input: Box::new(input),
                    combiner,
                    props,
                }
            }
            MrExpr::Join(l, r) => {
                let left = self.compile(l, reduce_idx);
                let right = self.compile(r, reduce_idx);
                let mut deps = self.deps[left.id()].clone();
                deps.extend(self.deps[right.id()].clone());
                let id = self.fresh_id(deps);
                FusedStage::Join {
                    id,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
    }
}

/// Feed every pair in `cur` through each compiled map in order, chaining
/// with no intermediate dataset. `next` is scratch space.
fn chain_maps(
    maps: &[Arc<CompiledMapLambda>],
    state: &Env,
    cur: &mut Vec<(Value, Value)>,
    next: &mut Vec<(Value, Value)>,
) -> Result<()> {
    for m in maps {
        next.clear();
        for (k, v) in cur.drain(..) {
            let frame = [k, v];
            m.apply_into(&frame, state, next)?;
        }
        std::mem::swap(cur, next);
    }
    Ok(())
}

/// A reduce boundary: `reduceByKey` when CA, `groupByKey` + ordered fold
/// otherwise. Combiner errors propagate deterministically.
fn run_wide(
    pairs: &PairRdd<Value, Value>,
    combiner: &CompiledReduceLambda,
    props: CaProperties,
    state: &Env,
) -> Result<PairRdd<Value, Value>> {
    if props.both() {
        pairs.try_reduce_by_key(|a, b| combiner.combine(a.clone(), b.clone(), state))
    } else {
        // Safe fallback: groupByKey preserves arrival order; fold left.
        let grouped = pairs.group_by_key();
        grouped.try_map(|(k, vs)| {
            let mut it = vs.iter();
            let mut acc = it
                .next()
                .cloned()
                .ok_or_else(|| Error::runtime("groupByKey produced an empty group"))?;
            for v in it {
                acc = combiner.combine(acc, v.clone(), state)?;
            }
            Ok((k.clone(), acc))
        })
    }
}

/// Inner equi-join producing the `(k, (v, w))`-as-tuple pairs the map λs
/// downstream bind — shared by all three execution modes.
fn join_pairs(
    left: &PairRdd<Value, Value>,
    right: &PairRdd<Value, Value>,
) -> PairRdd<Value, Value> {
    let joined = left.join(right);
    joined.map(|(k, (v, w))| (k.clone(), Value::Tuple(vec![v.clone(), w.clone()])))
}

/// Ingest a bare data source as key/value pairs (join/reduce input).
fn ingest_pairs(
    ctx: &Arc<Context>,
    state: &Env,
    src: &DataSource,
) -> Result<PairRdd<Value, Value>> {
    if src.shape != DataShape::Indexed {
        return Err(Error::runtime(
            "bare non-indexed data source reached codegen without a map",
        ));
    }
    let pairs: Vec<(Value, Value)> = source_frames(state, src)?
        .into_iter()
        .map(|mut row| {
            let v = row.pop().expect("indexed row");
            let k = row.pop().expect("indexed row");
            (k, v)
        })
        .collect();
    Ok(Rdd::parallelize(ctx, pairs))
}

/// Buffered twin of [`ingest_pairs`]: a bare indexed source becomes
/// width-2 `[i, e]` partition buffers directly — same rows, same
/// semantic bytes, no boxed pair materialization.
fn ingest_pairs_buf(ctx: &Arc<Context>, state: &Env, src: &DataSource) -> Result<BufRdd> {
    if src.shape != DataShape::Indexed {
        return Err(Error::runtime(
            "bare non-indexed data source reached codegen without a map",
        ));
    }
    let parts = source_frame_bufs(ctx, state, src)?;
    Ok(BufRdd::from_built_partitions(ctx, 2, parts))
}

/// Buffered twin of [`source_frames`]: build width-`arity` partition
/// buffers chunked exactly like `Rdd::parallelize` (so partition
/// boundaries, and therefore shuffle bucketing and error adjudication,
/// match the boxed plane). 2-D shape errors surface before any buffer is
/// built, preserving the boxed error-before-stage order.
fn source_frame_bufs(ctx: &Arc<Context>, state: &Env, src: &DataSource) -> Result<Vec<ValueBuf>> {
    let var = &src.var;
    let coll = state
        .get(var)
        .ok_or_else(|| Error::runtime(format!("input `{var}` missing")))?;
    let elems = coll
        .elements()
        .ok_or_else(|| Error::runtime(format!("input `{var}` is not a collection")))?;
    let width = src.shape.arity();
    match src.shape {
        DataShape::Flat => {
            let per = rows_per_partition(ctx, elems.len());
            Ok(elems
                .chunks(per)
                .map(|chunk| {
                    let mut buf = ValueBuf::with_capacity(width, chunk.len());
                    buf.set_string_interning(chunk.len() >= INTERN_MIN_PARTITION_ROWS);
                    for e in chunk {
                        buf.push_value(e);
                    }
                    buf
                })
                .collect())
        }
        DataShape::Indexed => {
            let per = rows_per_partition(ctx, elems.len());
            Ok(elems
                .chunks(per)
                .enumerate()
                .map(|(ci, chunk)| {
                    let mut buf = ValueBuf::with_capacity(width, chunk.len());
                    buf.set_string_interning(chunk.len() >= INTERN_MIN_PARTITION_ROWS);
                    for (j, e) in chunk.iter().enumerate() {
                        buf.push_value(&Value::Int((ci * per + j) as i64));
                        buf.push_value(e);
                    }
                    buf
                })
                .collect())
        }
        DataShape::Indexed2D => {
            let mut inners: Vec<&[Value]> = Vec::with_capacity(elems.len());
            for row in elems {
                inners.push(
                    row.elements()
                        .ok_or_else(|| Error::runtime(format!("`{var}` is not 2-D")))?,
                );
            }
            let n: usize = inners.iter().map(|r| r.len()).sum();
            let per = rows_per_partition(ctx, n);
            let mut parts = Vec::new();
            let fresh_buf = |rows: usize| {
                let mut buf = ValueBuf::with_capacity(width, rows);
                buf.set_string_interning(rows >= INTERN_MIN_PARTITION_ROWS);
                buf
            };
            let mut buf = fresh_buf(per.min(n));
            for (i, inner) in inners.iter().enumerate() {
                for (j, e) in inner.iter().enumerate() {
                    if buf.len() == per {
                        parts.push(std::mem::replace(&mut buf, fresh_buf(per)));
                    }
                    buf.push_value(&Value::Int(i as i64));
                    buf.push_value(&Value::Int(j as i64));
                    buf.push_value(e);
                }
            }
            if !buf.is_empty() {
                parts.push(buf);
            }
            Ok(parts)
        }
    }
}

/// Build per-record λ frames for a data source: `Flat` rows are `[e]`,
/// `Indexed` rows `[i, e]`, `Indexed2D` rows `[i, j, e]`.
fn source_frames(state: &Env, src: &DataSource) -> Result<Vec<Frame>> {
    let var = &src.var;
    let coll = state
        .get(var)
        .ok_or_else(|| Error::runtime(format!("input `{var}` missing")))?;
    let elems = coll
        .elements()
        .ok_or_else(|| Error::runtime(format!("input `{var}` is not a collection")))?;
    match src.shape {
        DataShape::Flat => Ok(elems.iter().map(|e| vec![e.clone()]).collect()),
        DataShape::Indexed => Ok(elems
            .iter()
            .enumerate()
            .map(|(i, e)| vec![Value::Int(i as i64), e.clone()])
            .collect()),
        DataShape::Indexed2D => {
            let mut rows = Vec::new();
            for (i, row) in elems.iter().enumerate() {
                let inner = row
                    .elements()
                    .ok_or_else(|| Error::runtime(format!("`{var}` is not 2-D")))?;
                for (j, e) in inner.iter().enumerate() {
                    rows.push(vec![Value::Int(i as i64), Value::Int(j as i64), e.clone()]);
                }
            }
            Ok(rows)
        }
    }
}

/// Build the record stream for a data source from the program state —
/// the "glue code" converting in-memory data into RDDs (§6.3). Used by
/// the interpreted reference executor, which flows tuple-shaped `Value`
/// records between per-operator stages.
pub fn source_rows(state: &Env, var: &str, shape: DataShape) -> Result<Vec<Value>> {
    let coll = state
        .get(var)
        .ok_or_else(|| Error::runtime(format!("input `{var}` missing")))?;
    let elems = coll
        .elements()
        .ok_or_else(|| Error::runtime(format!("input `{var}` is not a collection")))?;
    match shape {
        DataShape::Flat => Ok(elems.to_vec()),
        DataShape::Indexed => Ok(elems
            .iter()
            .enumerate()
            .map(|(i, e)| Value::Tuple(vec![Value::Int(i as i64), e.clone()]))
            .collect()),
        DataShape::Indexed2D => {
            let mut rows = Vec::new();
            for (i, row) in elems.iter().enumerate() {
                let inner = row
                    .elements()
                    .ok_or_else(|| Error::runtime(format!("`{var}` is not 2-D")))?;
                for (j, e) in inner.iter().enumerate() {
                    rows.push(Value::Tuple(vec![
                        Value::Int(i as i64),
                        Value::Int(j as i64),
                        e.clone(),
                    ]));
                }
            }
            Ok(rows)
        }
    }
}

/// Interpret a map λ as a `flatMapToPair` over the engine, tree-walking
/// the emit expressions against a cloned `Env` per record. `fields` is
/// the record shape the upstream produces; a λ of any other arity faults,
/// exactly like the IR reference evaluator.
fn apply_map(
    rdd: &Rdd<Value>,
    lambda: &MapLambda,
    state: &Env,
    fields: usize,
) -> Result<PairRdd<Value, Value>> {
    let lambda = lambda.clone();
    let base_env = state.clone();
    let arity = lambda.params.len();
    rdd.try_flat_map_to_pair(move |record| {
        if arity != fields {
            return Err(Error::runtime(format!(
                "map λ expects {arity} params, record has {fields} fields"
            )));
        }
        let mut env = base_env.clone();
        // Bind parameters: multi-param records arrive as tuples.
        if arity == 1 {
            env.set(lambda.params[0].clone(), record.clone());
        } else if let Value::Tuple(parts) = record {
            for (p, v) in lambda.params.iter().zip(parts) {
                env.set(p.clone(), v.clone());
            }
        } else {
            return Err(Error::runtime(format!(
                "map λ expects {arity} params, record has 1 fields"
            )));
        }
        let mut out = Vec::with_capacity(lambda.emits.len());
        for emit in &lambda.emits {
            let fire = match &emit.cond {
                Some(c) => c
                    .eval(&env)?
                    .as_bool()
                    .ok_or_else(|| Error::runtime("emit guard not a bool"))?,
                None => true,
            };
            if fire {
                out.push((emit.key.eval(&env)?, emit.val.eval(&env)?));
            }
        }
        Ok(out)
    })
}

/// Interpret a reduce: `reduceByKey` when CA, `groupByKey` + ordered fold
/// otherwise. Evaluation errors abort the stage instead of corrupting
/// output.
fn apply_reduce(
    pairs: &PairRdd<Value, Value>,
    lambda: &ReduceLambda,
    state: &Env,
    props: CaProperties,
) -> Result<PairRdd<Value, Value>> {
    let lambda = lambda.clone();
    let base_env = state.clone();
    if props.both() {
        pairs.try_reduce_by_key(move |a: &Value, b: &Value| {
            let mut env = base_env.clone();
            env.set(lambda.params[0].clone(), a.clone());
            env.set(lambda.params[1].clone(), b.clone());
            lambda.body.eval(&env)
        })
    } else {
        // Safe fallback: groupByKey preserves arrival order; fold left.
        let grouped = pairs.group_by_key();
        grouped.try_map(move |(k, vs)| {
            let mut env = base_env.clone();
            let mut it = vs.iter();
            let mut acc = it
                .next()
                .cloned()
                .ok_or_else(|| Error::runtime("groupByKey produced an empty group"))?;
            for v in it {
                env.set(lambda.params[0].clone(), acc);
                env.set(lambda.params[1].clone(), v.clone());
                acc = lambda.body.eval(&env)?;
            }
            Ok((k.clone(), acc))
        })
    }
}

/// Reconstruct output variables from the collected pairs, mirroring the
/// IR evaluator's output semantics.
fn bind_outputs(
    binding: &OutputBinding,
    pairs: &[(Value, Value)],
    state: &Env,
    out: &mut Env,
) -> Result<()> {
    let pre = |var: &str| -> Result<Value> {
        state
            .get(var)
            .cloned()
            .ok_or_else(|| Error::runtime(format!("output `{var}` missing pre-value")))
    };
    match &binding.kind {
        OutputKind::Scalar => {
            let var = &binding.vars[0];
            let v = match pairs {
                [] => pre(var)?,
                [(_, v)] => v.clone(),
                _ => return Err(Error::runtime("scalar output produced several keys")),
            };
            out.set(var.clone(), v);
        }
        OutputKind::ScalarTuple => match pairs {
            [] => {
                for var in &binding.vars {
                    let v = pre(var)?;
                    out.set(var.clone(), v);
                }
            }
            [(_, Value::Tuple(parts))] => {
                for (var, v) in binding.vars.iter().zip(parts) {
                    out.set(var.clone(), v.clone());
                }
            }
            _ => return Err(Error::runtime("tuple output shape mismatch")),
        },
        OutputKind::KeyedScalars { keys } => {
            for (var, key_expr) in binding.vars.iter().zip(keys) {
                let key = key_expr.eval(state)?;
                match pairs.iter().find(|(k, _)| *k == key) {
                    Some((_, v)) => out.set(var.clone(), v.clone()),
                    None => {
                        let v = pre(var)?;
                        out.set(var.clone(), v);
                    }
                }
            }
        }
        OutputKind::AssocArray { len_var } => {
            let var = &binding.vars[0];
            let len = state
                .get(len_var)
                .and_then(Value::as_int)
                .ok_or_else(|| Error::runtime(format!("`{len_var}` not an int")))?;
            let Value::Array(mut arr) = pre(var)? else {
                return Err(Error::runtime(format!("`{var}` is not an array")));
            };
            arr.resize(len as usize, Value::Int(0));
            for (k, v) in pairs {
                let i = k
                    .as_int()
                    .ok_or_else(|| Error::runtime("array output needs int keys"))?;
                if i < 0 || i as usize >= arr.len() {
                    return Err(Error::runtime(format!("array key {i} out of bounds")));
                }
                arr[i as usize] = v.clone();
            }
            out.set(var.clone(), Value::Array(arr));
        }
        OutputKind::AssocMap => {
            let var = &binding.vars[0];
            out.set(var.clone(), Value::Map(pairs.to_vec()));
        }
        OutputKind::CollectedList => {
            let var = &binding.vars[0];
            let mut vals: Vec<Value> = pairs.iter().map(|(_, v)| v.clone()).collect();
            vals.sort();
            out.set(var.clone(), Value::List(vals));
        }
    }
    Ok(())
}

/// Alias guard (§3.2): true when the plan's input collections are
/// pairwise distinct objects, so the translated code is safe to run. The
/// generated program falls back to the sequential fragment otherwise.
pub fn alias_free(state: &Env, data_vars: &[String]) -> bool {
    for (i, a) in data_vars.iter().enumerate() {
        for b in &data_vars[i + 1..] {
            if let (Some(va), Some(vb)) = (state.get(a), state.get(b)) {
                if va == vb {
                    return false;
                }
            }
        }
    }
    true
}

/// Convenience wrapper used by examples: keys evaluated against `state`.
pub fn eval_ir(expr: &IrExpr, state: &Env) -> Result<Value> {
    expr.eval(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_ir::lambda::Emit;
    use casper_ir::mr::DataSource;
    use seqlang::ast::BinOp;
    use seqlang::ty::Type;

    fn ctx() -> Arc<Context> {
        Context::with_parallelism(4, 8)
    }

    fn ca() -> CaProperties {
        CaProperties {
            commutative: true,
            associative: true,
        }
    }

    fn word_count_summary() -> ProgramSummary {
        let m = MapLambda::new(
            vec!["w"],
            vec![Emit::unconditional(IrExpr::var("w"), IrExpr::int(1))],
        );
        let expr = MrExpr::Data(DataSource::flat("words", Type::Str))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        ProgramSummary::single("counts", expr, OutputKind::AssocMap)
    }

    /// All four execution modes must agree exactly, including on error
    /// outcomes.
    fn assert_modes_agree(plan: &CompiledPlan, state: &Env) {
        let c = ctx();
        let fused = plan.execute(&c, state);
        let boxed = plan.execute_boxed(&c, state);
        let unfused = plan.execute_compiled_unfused(&c, state);
        let interp = plan.execute_interpreted(&c, state);
        match (&fused, &boxed) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "buffered vs boxed outputs diverge"),
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "buffered vs boxed errors diverge"
            ),
            _ => panic!("buffered {fused:?} vs boxed {boxed:?}"),
        }
        match (&fused, &interp) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "fused vs interpreted outputs diverge"),
            (Err(_), Err(_)) => {}
            _ => panic!("fused {fused:?} vs interpreted {interp:?}"),
        }
        match (&fused, &unfused) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "fused vs unfused outputs diverge"),
            (Err(_), Err(_)) => {}
            _ => panic!("fused {fused:?} vs unfused {unfused:?}"),
        }
    }

    #[test]
    fn word_count_plan_executes() {
        let plan = CompiledPlan::new(word_count_summary(), vec![ca()]);
        let mut state = Env::new();
        state.set(
            "words",
            Value::List(vec![
                Value::str("a"),
                Value::str("b"),
                Value::str("a"),
                Value::str("a"),
            ]),
        );
        state.set("counts", Value::Map(vec![]));
        let out = plan.execute(&ctx(), &state).unwrap();
        let Value::Map(entries) = out.get("counts").unwrap() else {
            panic!()
        };
        let get = |k: &str| {
            entries
                .iter()
                .find(|(key, _)| key == &Value::str(k))
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("a"), Some(Value::Int(3)));
        assert_eq!(get("b"), Some(Value::Int(1)));
        assert_modes_agree(&plan, &state);
    }

    #[test]
    fn plan_matches_ir_evaluator() {
        // The engine execution must agree with the IR reference semantics.
        let summary = word_count_summary();
        let plan = CompiledPlan::new(summary.clone(), vec![ca()]);
        let mut state = Env::new();
        state.set(
            "words",
            Value::List(
                ["x", "y", "x", "z", "z", "z"]
                    .iter()
                    .map(Value::str)
                    .collect(),
            ),
        );
        state.set("counts", Value::Map(vec![]));
        let engine_out = plan.execute(&ctx(), &state).unwrap();
        let ir_out = casper_ir::eval::eval_summary(&summary, &state).unwrap();
        assert_eq!(engine_out.get("counts"), ir_out.get("counts"));
        assert_modes_agree(&plan, &state);
    }

    #[test]
    fn non_ca_reduce_uses_group_by_key() {
        // keep-first reducer (non-commutative): plan must still compute
        // the in-order fold result.
        let m = MapLambda::new(
            vec!["x"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
        );
        let r = ReduceLambda::new(IrExpr::var("v1"));
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m)
            .reduce(r);
        let summary = ProgramSummary::single("first", expr, OutputKind::Scalar);
        let plan = CompiledPlan::new(
            summary,
            vec![CaProperties {
                commutative: false,
                associative: true,
            }],
        );
        let c = ctx();
        let mut state = Env::new();
        state.set(
            "xs",
            Value::List(vec![Value::Int(7), Value::Int(8), Value::Int(9)]),
        );
        state.set("first", Value::Int(0));
        c.reset_stats();
        let out = plan.execute(&c, &state).unwrap();
        assert_eq!(out.get("first"), Some(&Value::Int(7)));
        let labels: Vec<String> = c.stats().stages.iter().map(|s| s.label.clone()).collect();
        assert!(
            labels.iter().any(|l| l == "groupByKey"),
            "non-CA must compile to groupByKey: {labels:?}"
        );
        assert_modes_agree(&plan, &state);
    }

    #[test]
    fn ca_reduce_uses_reduce_by_key() {
        let plan = CompiledPlan::new(word_count_summary(), vec![ca()]);
        let c = ctx();
        let mut state = Env::new();
        state.set("words", Value::List(vec![Value::str("a")]));
        state.set("counts", Value::Map(vec![]));
        c.reset_stats();
        plan.execute(&c, &state).unwrap();
        let labels: Vec<String> = c.stats().stages.iter().map(|s| s.label.clone()).collect();
        assert!(labels.iter().any(|l| l == "reduceByKey"), "{labels:?}");
    }

    #[test]
    fn scalar_fallback_on_empty_input() {
        let m = MapLambda::new(
            vec!["x"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        let summary = ProgramSummary::single("s", expr, OutputKind::Scalar);
        let plan = CompiledPlan::new(summary, vec![ca()]);
        let mut state = Env::new();
        state.set("xs", Value::List(vec![]));
        state.set("s", Value::Int(99));
        let out = plan.execute(&ctx(), &state).unwrap();
        assert_eq!(out.get("s"), Some(&Value::Int(99)));
        assert_modes_agree(&plan, &state);
    }

    #[test]
    fn indexed_2d_plan_rwm() {
        // Full row-wise mean plan from the paper's Figure 1(b).
        let m1 = MapLambda::new(
            vec!["i", "j", "v"],
            vec![Emit::unconditional(IrExpr::var("i"), IrExpr::var("v"))],
        );
        let m2 = MapLambda::new(
            vec!["_k", "_v"],
            vec![Emit::unconditional(
                IrExpr::var("_k"),
                IrExpr::bin(BinOp::Div, IrExpr::var("_v"), IrExpr::var("cols")),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed_2d("mat", Type::Int))
            .map(m1)
            .reduce(ReduceLambda::binop(BinOp::Add))
            .map(m2);
        let summary = ProgramSummary::single(
            "m",
            expr,
            OutputKind::AssocArray {
                len_var: "rows".into(),
            },
        );
        let plan = CompiledPlan::new(summary, vec![ca()]);
        let mut state = Env::new();
        state.set(
            "mat",
            Value::Array(vec![
                Value::Array(vec![Value::Int(1), Value::Int(3)]),
                Value::Array(vec![Value::Int(10), Value::Int(20)]),
            ]),
        );
        state.set("rows", Value::Int(2));
        state.set("cols", Value::Int(2));
        state.set("m", Value::Array(vec![Value::Int(0), Value::Int(0)]));
        let out = plan.execute(&ctx(), &state).unwrap();
        assert_eq!(
            out.get("m"),
            Some(&Value::Array(vec![Value::Int(2), Value::Int(15)]))
        );
        assert_modes_agree(&plan, &state);
    }

    #[test]
    fn fused_pipeline_collapses_narrow_chain() {
        // map ∘ map over a source must execute as ONE fused stage, with
        // the same shuffle bytes the unfused execution moves.
        let m1 = MapLambda::new(
            vec!["x"],
            vec![Emit::unconditional(
                IrExpr::var("x"),
                IrExpr::bin(BinOp::Mul, IrExpr::var("x"), IrExpr::int(2)),
            )],
        );
        let m2 = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::bin(BinOp::Add, IrExpr::var("v"), IrExpr::int(1)),
            )],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m1)
            .map(m2)
            .reduce(ReduceLambda::binop(BinOp::Add));
        let summary = ProgramSummary::single("s", expr, OutputKind::Scalar);
        let plan = CompiledPlan::new(summary, vec![ca()]);
        let mut state = Env::new();
        state.set("xs", Value::List((1..=50).map(Value::Int).collect()));
        state.set("s", Value::Int(0));

        let c = ctx();
        c.reset_stats();
        let fused_out = plan.execute(&c, &state).unwrap();
        let fused_stats = c.stats();
        let fused_maps = fused_stats
            .stages
            .iter()
            .filter(|s| s.kind == StageKind::Map)
            .count();
        assert_eq!(fused_maps, 1, "narrow chain must fuse: {fused_stats}");
        assert!(fused_stats.stages.iter().any(|s| s.label == "fused[mapx2]"));

        c.reset_stats();
        let interp_out = plan.execute_interpreted(&c, &state).unwrap();
        let interp_stats = c.stats();
        assert_eq!(fused_out, interp_out);
        assert_eq!(
            fused_stats.total_shuffled_bytes(),
            interp_stats.total_shuffled_bytes(),
            "fusion must not change what crosses the shuffle"
        );
        assert_eq!(fused_stats.shuffle_count(), interp_stats.shuffle_count());
    }

    #[test]
    fn evaluation_errors_propagate_from_all_modes() {
        // Guard faults (division by a zero free variable) must abort
        // execution, not silently drop records — the old executor's bug.
        let m = MapLambda::new(
            vec!["v"],
            vec![Emit::guarded(
                IrExpr::bin(
                    BinOp::Gt,
                    IrExpr::bin(BinOp::Div, IrExpr::var("v"), IrExpr::var("z")),
                    IrExpr::int(0),
                ),
                IrExpr::int(0),
                IrExpr::var("v"),
            )],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        let summary = ProgramSummary::single("s", expr, OutputKind::Scalar);
        let plan = CompiledPlan::new(summary, vec![ca()]);
        let mut state = Env::new();
        state.set("xs", Value::List(vec![Value::Int(4)]));
        state.set("z", Value::Int(0));
        state.set("s", Value::Int(0));
        let c = ctx();
        assert!(plan.execute(&c, &state).is_err());
        assert!(plan.execute_boxed(&c, &state).is_err());
        assert!(plan.execute_compiled_unfused(&c, &state).is_err());
        assert!(plan.execute_interpreted(&c, &state).is_err());
        // Reduce-side faults propagate too.
        let bad_reduce =
            ReduceLambda::new(IrExpr::bin(BinOp::Div, IrExpr::var("v1"), IrExpr::var("z")));
        let m2 = MapLambda::new(
            vec!["v"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("v"))],
        );
        let expr2 = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m2)
            .reduce(bad_reduce);
        let plan2 = CompiledPlan::new(
            ProgramSummary::single("s", expr2, OutputKind::Scalar),
            vec![ca()],
        );
        let mut st2 = Env::new();
        st2.set("xs", Value::List(vec![Value::Int(1), Value::Int(2)]));
        st2.set("z", Value::Int(0));
        st2.set("s", Value::Int(0));
        assert!(plan2.execute(&c, &st2).is_err());
        assert!(plan2.execute_interpreted(&c, &st2).is_err());
    }

    #[test]
    fn plan_cache_serves_unchanged_cut_points() {
        let plan = CompiledPlan::new(word_count_summary(), vec![ca()]);
        let mut state = Env::new();
        state.set(
            "words",
            Value::List(["a", "b", "a", "c"].iter().map(Value::str).collect()),
        );
        state.set("counts", Value::Map(vec![]));
        let c = ctx();
        let mut cache = PlanCache::new();

        c.reset_stats();
        let first = plan.execute_cached(&c, &state, &mut cache).unwrap();
        let cold_stats = c.stats();
        assert_eq!(cache.hits(), 0);
        assert!(cold_stats.stages.iter().all(|s| !s.cached));

        c.reset_stats();
        let second = plan.execute_cached(&c, &state, &mut cache).unwrap();
        let warm_stats = c.stats();
        assert_eq!(first, second);
        assert!(cache.hits() > 0, "unchanged inputs must hit the cache");
        assert!(warm_stats.stages.iter().any(|s| s.cached), "{warm_stats}");
        // The simulator must not charge the cached recomputation.
        use mapreduce::sim::simulate_job;
        use mapreduce::{ClusterSpec, Framework};
        let spec = ClusterSpec::paper();
        let cold = simulate_job(&cold_stats, &spec, Framework::Spark).seconds;
        let warm = simulate_job(&warm_stats, &spec, Framework::Spark).seconds;
        assert!(warm < cold, "cached run must be cheaper: {warm} vs {cold}");

        // Changing the source invalidates the cut-point.
        state.set("words", Value::List(vec![Value::str("zzz")]));
        let third = plan.execute_cached(&c, &state, &mut cache).unwrap();
        let Value::Map(entries) = third.get("counts").unwrap() else {
            panic!()
        };
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn plan_cache_is_bound_to_its_plan() {
        // Two plans with identical stage ids and dependency footprints
        // but different λ bodies: a cache reused across them must not
        // serve the first plan's results as the second's.
        let mk = |op: BinOp| {
            let m = MapLambda::new(
                vec!["x"],
                vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
            );
            let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
                .map(m)
                .reduce(ReduceLambda::binop(op));
            CompiledPlan::new(
                ProgramSummary::single("s", expr, OutputKind::Scalar),
                vec![ca()],
            )
        };
        let sum = mk(BinOp::Add);
        let product = mk(BinOp::Mul);
        let mut state = Env::new();
        state.set(
            "xs",
            Value::List(vec![Value::Int(2), Value::Int(3), Value::Int(4)]),
        );
        state.set("s", Value::Int(0));
        let c = ctx();
        let mut cache = PlanCache::new();
        let a = sum.execute_cached(&c, &state, &mut cache).unwrap();
        assert_eq!(a.get("s"), Some(&Value::Int(9)));
        let b = product.execute_cached(&c, &state, &mut cache).unwrap();
        assert_eq!(
            b.get("s"),
            Some(&Value::Int(24)),
            "cache leaked across plans"
        );
        // Back to the first plan: rebinding clears again, result correct.
        let a2 = sum.execute_cached(&c, &state, &mut cache).unwrap();
        assert_eq!(a2.get("s"), Some(&Value::Int(9)));
    }

    #[test]
    fn alias_guard_detects_shared_inputs() {
        let mut state = Env::new();
        let shared = Value::List(vec![Value::Int(1)]);
        state.set("a", shared.clone());
        state.set("b", shared);
        state.set("c", Value::List(vec![Value::Int(2)]));
        assert!(!alias_free(&state, &["a".into(), "b".into()]));
        assert!(alias_free(&state, &["a".into(), "c".into()]));
    }
}
