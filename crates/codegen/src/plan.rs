//! Executable plans: verified summaries compiled onto the engine.

use std::sync::Arc;

use casper_ir::expr::IrExpr;
use casper_ir::lambda::{MapLambda, ReduceLambda};
use casper_ir::mr::{DataShape, MrExpr, OutputBinding, OutputKind, ProgramSummary};
use mapreduce::rdd::{PairRdd, Rdd};
use mapreduce::Context;
use seqlang::env::Env;
use seqlang::error::{Error, Result};
use seqlang::value::Value;
use verifier::CaProperties;

/// A summary compiled against the engine, with the verifier's algebraic
/// facts steering primitive selection (§6.3: `reduceByKey` only for
/// commutative-associative transformers, otherwise `groupByKey`).
#[derive(Clone)]
pub struct CompiledPlan {
    pub summary: ProgramSummary,
    /// Per-reduce CA properties, in pipeline order.
    pub reduce_props: Vec<CaProperties>,
}

impl CompiledPlan {
    pub fn new(summary: ProgramSummary, reduce_props: Vec<CaProperties>) -> CompiledPlan {
        CompiledPlan {
            summary,
            reduce_props,
        }
    }

    /// Execute the plan on the engine against a program state, returning
    /// the computed output variables. Statistics accumulate in `ctx`.
    pub fn execute(&self, ctx: &Arc<Context>, state: &Env) -> Result<Env> {
        let mut out = Env::new();
        for binding in &self.summary.bindings {
            let mut reduce_idx = 0usize;
            let pairs = self.run_stage(ctx, state, &binding.expr, &mut reduce_idx)?;
            bind_outputs(binding, &pairs.collect_sorted(), state, &mut out)?;
        }
        Ok(out)
    }

    /// Recursively execute one pipeline stage, producing key/value pairs.
    fn run_stage(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        expr: &MrExpr,
        reduce_idx: &mut usize,
    ) -> Result<PairRdd<Value, Value>> {
        match expr {
            MrExpr::Data(src) => {
                // A bare data source feeding a join: its rows are already
                // key/value shaped for Indexed data (`(i, v)` pairs — the
                // zipWithIndex ingestion of Appendix C).
                if src.shape != DataShape::Indexed {
                    return Err(Error::runtime(
                        "bare non-indexed data source reached codegen without a map",
                    ));
                }
                let rows = source_rows(state, &src.var, src.shape)?;
                let rdd: Rdd<Value> = Rdd::parallelize(ctx, rows);
                Ok(rdd.map_to_pair(|row| match row {
                    Value::Tuple(kv) if kv.len() == 2 => (kv[0].clone(), kv[1].clone()),
                    other => (Value::Unit, other.clone()),
                }))
            }
            MrExpr::Map(inner, lambda) => match &**inner {
                MrExpr::Data(src) => {
                    let rows = source_rows(state, &src.var, src.shape)?;
                    let rdd: Rdd<Value> = Rdd::parallelize(ctx, rows);
                    apply_map(&rdd, lambda, state)
                }
                _ => {
                    let upstream = self.run_stage(ctx, state, inner, reduce_idx)?;
                    let as_rows: Rdd<Value> =
                        upstream.map(|(k, v)| Value::Tuple(vec![k.clone(), v.clone()]));
                    apply_map(&as_rows, lambda, state)
                }
            },
            MrExpr::Reduce(inner, lambda) => {
                let upstream = self.run_stage(ctx, state, inner, reduce_idx)?;
                let props = self
                    .reduce_props
                    .get(*reduce_idx)
                    .copied()
                    .unwrap_or(CaProperties {
                        commutative: false,
                        associative: false,
                    });
                *reduce_idx += 1;
                apply_reduce(&upstream, lambda, state, props)
            }
            MrExpr::Join(l, r) => {
                let left = self.run_stage(ctx, state, l, reduce_idx)?;
                let right = self.run_stage(ctx, state, r, reduce_idx)?;
                let joined = left.join(&right);
                Ok(joined.map(|(k, (v, w))| (k.clone(), Value::Tuple(vec![v.clone(), w.clone()]))))
            }
        }
    }
}

/// Build the record stream for a data source from the program state —
/// the "glue code" converting in-memory data into RDDs (§6.3).
pub fn source_rows(state: &Env, var: &str, shape: DataShape) -> Result<Vec<Value>> {
    let coll = state
        .get(var)
        .ok_or_else(|| Error::runtime(format!("input `{var}` missing")))?;
    let elems = coll
        .elements()
        .ok_or_else(|| Error::runtime(format!("input `{var}` is not a collection")))?;
    match shape {
        DataShape::Flat => Ok(elems.to_vec()),
        DataShape::Indexed => Ok(elems
            .iter()
            .enumerate()
            .map(|(i, e)| Value::Tuple(vec![Value::Int(i as i64), e.clone()]))
            .collect()),
        DataShape::Indexed2D => {
            let mut rows = Vec::new();
            for (i, row) in elems.iter().enumerate() {
                let inner = row
                    .elements()
                    .ok_or_else(|| Error::runtime(format!("`{var}` is not 2-D")))?;
                for (j, e) in inner.iter().enumerate() {
                    rows.push(Value::Tuple(vec![
                        Value::Int(i as i64),
                        Value::Int(j as i64),
                        e.clone(),
                    ]));
                }
            }
            Ok(rows)
        }
    }
}

/// Compile a map lambda into a `flatMapToPair` over the engine.
fn apply_map(rdd: &Rdd<Value>, lambda: &MapLambda, state: &Env) -> Result<PairRdd<Value, Value>> {
    let lambda = lambda.clone();
    let base_env = state.clone();
    let arity = lambda.params.len();
    Ok(rdd.flat_map_to_pair(move |record| {
        let mut env = base_env.clone();
        // Bind parameters: multi-param records arrive as tuples.
        if arity == 1 {
            env.set(lambda.params[0].clone(), record.clone());
        } else if let Value::Tuple(parts) = record {
            for (p, v) in lambda.params.iter().zip(parts) {
                env.set(p.clone(), v.clone());
            }
        }
        let mut out = Vec::with_capacity(lambda.emits.len());
        for emit in &lambda.emits {
            let fire = match &emit.cond {
                Some(c) => matches!(c.eval(&env), Ok(Value::Bool(true))),
                None => true,
            };
            if fire {
                if let (Ok(k), Ok(v)) = (emit.key.eval(&env), emit.val.eval(&env)) {
                    out.push((k, v));
                }
            }
        }
        out
    }))
}

/// Compile a reduce: `reduceByKey` when CA, `groupByKey` + ordered fold
/// otherwise.
fn apply_reduce(
    pairs: &PairRdd<Value, Value>,
    lambda: &ReduceLambda,
    state: &Env,
    props: CaProperties,
) -> Result<PairRdd<Value, Value>> {
    let lambda = lambda.clone();
    let base_env = state.clone();
    if props.both() {
        let combine = move |a: &Value, b: &Value| -> Value {
            let mut env = base_env.clone();
            env.set(lambda.params[0].clone(), a.clone());
            env.set(lambda.params[1].clone(), b.clone());
            lambda.body.eval(&env).unwrap_or(Value::Unit)
        };
        Ok(pairs.reduce_by_key(combine))
    } else {
        // Safe fallback: groupByKey preserves arrival order; fold left.
        let grouped = pairs.group_by_key();
        Ok(grouped.map(move |(k, vs)| {
            let mut env = base_env.clone();
            let mut it = vs.iter();
            let mut acc = it.next().cloned().unwrap_or(Value::Unit);
            for v in it {
                env.set(lambda.params[0].clone(), acc);
                env.set(lambda.params[1].clone(), v.clone());
                acc = lambda.body.eval(&env).unwrap_or(Value::Unit);
            }
            (k.clone(), acc)
        }))
    }
}

/// Reconstruct output variables from the collected pairs, mirroring the
/// IR evaluator's output semantics.
fn bind_outputs(
    binding: &OutputBinding,
    pairs: &[(Value, Value)],
    state: &Env,
    out: &mut Env,
) -> Result<()> {
    let pre = |var: &str| -> Result<Value> {
        state
            .get(var)
            .cloned()
            .ok_or_else(|| Error::runtime(format!("output `{var}` missing pre-value")))
    };
    match &binding.kind {
        OutputKind::Scalar => {
            let var = &binding.vars[0];
            let v = match pairs {
                [] => pre(var)?,
                [(_, v)] => v.clone(),
                _ => return Err(Error::runtime("scalar output produced several keys")),
            };
            out.set(var.clone(), v);
        }
        OutputKind::ScalarTuple => match pairs {
            [] => {
                for var in &binding.vars {
                    let v = pre(var)?;
                    out.set(var.clone(), v);
                }
            }
            [(_, Value::Tuple(parts))] => {
                for (var, v) in binding.vars.iter().zip(parts) {
                    out.set(var.clone(), v.clone());
                }
            }
            _ => return Err(Error::runtime("tuple output shape mismatch")),
        },
        OutputKind::KeyedScalars { keys } => {
            for (var, key_expr) in binding.vars.iter().zip(keys) {
                let key = key_expr.eval(state)?;
                match pairs.iter().find(|(k, _)| *k == key) {
                    Some((_, v)) => out.set(var.clone(), v.clone()),
                    None => {
                        let v = pre(var)?;
                        out.set(var.clone(), v);
                    }
                }
            }
        }
        OutputKind::AssocArray { len_var } => {
            let var = &binding.vars[0];
            let len = state
                .get(len_var)
                .and_then(Value::as_int)
                .ok_or_else(|| Error::runtime(format!("`{len_var}` not an int")))?;
            let Value::Array(mut arr) = pre(var)? else {
                return Err(Error::runtime(format!("`{var}` is not an array")));
            };
            arr.resize(len as usize, Value::Int(0));
            for (k, v) in pairs {
                let i = k
                    .as_int()
                    .ok_or_else(|| Error::runtime("array output needs int keys"))?;
                if i < 0 || i as usize >= arr.len() {
                    return Err(Error::runtime(format!("array key {i} out of bounds")));
                }
                arr[i as usize] = v.clone();
            }
            out.set(var.clone(), Value::Array(arr));
        }
        OutputKind::AssocMap => {
            let var = &binding.vars[0];
            out.set(var.clone(), Value::Map(pairs.to_vec()));
        }
        OutputKind::CollectedList => {
            let var = &binding.vars[0];
            let mut vals: Vec<Value> = pairs.iter().map(|(_, v)| v.clone()).collect();
            vals.sort();
            out.set(var.clone(), Value::List(vals));
        }
    }
    Ok(())
}

/// Alias guard (§3.2): true when the plan's input collections are
/// pairwise distinct objects, so the translated code is safe to run. The
/// generated program falls back to the sequential fragment otherwise.
pub fn alias_free(state: &Env, data_vars: &[String]) -> bool {
    for (i, a) in data_vars.iter().enumerate() {
        for b in &data_vars[i + 1..] {
            if let (Some(va), Some(vb)) = (state.get(a), state.get(b)) {
                if va == vb {
                    return false;
                }
            }
        }
    }
    true
}

/// Convenience wrapper used by examples: keys evaluated against `state`.
pub fn eval_ir(expr: &IrExpr, state: &Env) -> Result<Value> {
    expr.eval(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_ir::lambda::Emit;
    use casper_ir::mr::DataSource;
    use seqlang::ast::BinOp;
    use seqlang::ty::Type;

    fn ctx() -> Arc<Context> {
        Context::with_parallelism(4, 8)
    }

    fn ca() -> CaProperties {
        CaProperties {
            commutative: true,
            associative: true,
        }
    }

    fn word_count_summary() -> ProgramSummary {
        let m = MapLambda::new(
            vec!["w"],
            vec![Emit::unconditional(IrExpr::var("w"), IrExpr::int(1))],
        );
        let expr = MrExpr::Data(DataSource::flat("words", Type::Str))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        ProgramSummary::single("counts", expr, OutputKind::AssocMap)
    }

    #[test]
    fn word_count_plan_executes() {
        let plan = CompiledPlan::new(word_count_summary(), vec![ca()]);
        let mut state = Env::new();
        state.set(
            "words",
            Value::List(vec![
                Value::str("a"),
                Value::str("b"),
                Value::str("a"),
                Value::str("a"),
            ]),
        );
        state.set("counts", Value::Map(vec![]));
        let out = plan.execute(&ctx(), &state).unwrap();
        let Value::Map(entries) = out.get("counts").unwrap() else {
            panic!()
        };
        let get = |k: &str| {
            entries
                .iter()
                .find(|(key, _)| key == &Value::str(k))
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("a"), Some(Value::Int(3)));
        assert_eq!(get("b"), Some(Value::Int(1)));
    }

    #[test]
    fn plan_matches_ir_evaluator() {
        // The engine execution must agree with the IR reference semantics.
        let summary = word_count_summary();
        let plan = CompiledPlan::new(summary.clone(), vec![ca()]);
        let mut state = Env::new();
        state.set(
            "words",
            Value::List(
                ["x", "y", "x", "z", "z", "z"]
                    .iter()
                    .map(Value::str)
                    .collect(),
            ),
        );
        state.set("counts", Value::Map(vec![]));
        let engine_out = plan.execute(&ctx(), &state).unwrap();
        let ir_out = casper_ir::eval::eval_summary(&summary, &state).unwrap();
        assert_eq!(engine_out.get("counts"), ir_out.get("counts"));
    }

    #[test]
    fn non_ca_reduce_uses_group_by_key() {
        // keep-first reducer (non-commutative): plan must still compute
        // the in-order fold result.
        let m = MapLambda::new(
            vec!["x"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
        );
        let r = ReduceLambda::new(IrExpr::var("v1"));
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m)
            .reduce(r);
        let summary = ProgramSummary::single("first", expr, OutputKind::Scalar);
        let plan = CompiledPlan::new(
            summary,
            vec![CaProperties {
                commutative: false,
                associative: true,
            }],
        );
        let c = ctx();
        let mut state = Env::new();
        state.set(
            "xs",
            Value::List(vec![Value::Int(7), Value::Int(8), Value::Int(9)]),
        );
        state.set("first", Value::Int(0));
        c.reset_stats();
        let out = plan.execute(&c, &state).unwrap();
        assert_eq!(out.get("first"), Some(&Value::Int(7)));
        let labels: Vec<String> = c.stats().stages.iter().map(|s| s.label.clone()).collect();
        assert!(
            labels.iter().any(|l| l == "groupByKey"),
            "non-CA must compile to groupByKey: {labels:?}"
        );
    }

    #[test]
    fn ca_reduce_uses_reduce_by_key() {
        let plan = CompiledPlan::new(word_count_summary(), vec![ca()]);
        let c = ctx();
        let mut state = Env::new();
        state.set("words", Value::List(vec![Value::str("a")]));
        state.set("counts", Value::Map(vec![]));
        c.reset_stats();
        plan.execute(&c, &state).unwrap();
        let labels: Vec<String> = c.stats().stages.iter().map(|s| s.label.clone()).collect();
        assert!(labels.iter().any(|l| l == "reduceByKey"), "{labels:?}");
    }

    #[test]
    fn scalar_fallback_on_empty_input() {
        let m = MapLambda::new(
            vec!["x"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        let summary = ProgramSummary::single("s", expr, OutputKind::Scalar);
        let plan = CompiledPlan::new(summary, vec![ca()]);
        let mut state = Env::new();
        state.set("xs", Value::List(vec![]));
        state.set("s", Value::Int(99));
        let out = plan.execute(&ctx(), &state).unwrap();
        assert_eq!(out.get("s"), Some(&Value::Int(99)));
    }

    #[test]
    fn indexed_2d_plan_rwm() {
        // Full row-wise mean plan from the paper's Figure 1(b).
        let m1 = MapLambda::new(
            vec!["i", "j", "v"],
            vec![Emit::unconditional(IrExpr::var("i"), IrExpr::var("v"))],
        );
        let m2 = MapLambda::new(
            vec!["_k", "_v"],
            vec![Emit::unconditional(
                IrExpr::var("_k"),
                IrExpr::bin(BinOp::Div, IrExpr::var("_v"), IrExpr::var("cols")),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed_2d("mat", Type::Int))
            .map(m1)
            .reduce(ReduceLambda::binop(BinOp::Add))
            .map(m2);
        let summary = ProgramSummary::single(
            "m",
            expr,
            OutputKind::AssocArray {
                len_var: "rows".into(),
            },
        );
        let plan = CompiledPlan::new(summary, vec![ca()]);
        let mut state = Env::new();
        state.set(
            "mat",
            Value::Array(vec![
                Value::Array(vec![Value::Int(1), Value::Int(3)]),
                Value::Array(vec![Value::Int(10), Value::Int(20)]),
            ]),
        );
        state.set("rows", Value::Int(2));
        state.set("cols", Value::Int(2));
        state.set("m", Value::Array(vec![Value::Int(0), Value::Int(0)]));
        let out = plan.execute(&ctx(), &state).unwrap();
        assert_eq!(
            out.get("m"),
            Some(&Value::Array(vec![Value::Int(2), Value::Int(15)]))
        );
    }

    #[test]
    fn alias_guard_detects_shared_inputs() {
        let mut state = Env::new();
        let shared = Value::List(vec![Value::Int(1)]);
        state.set("a", shared.clone());
        state.set("b", shared);
        state.set("c", Value::List(vec![Value::Int(2)]));
        assert!(!alias_free(&state, &["a".into(), "b".into()]));
        assert!(alias_free(&state, &["a".into(), "c".into()]));
    }
}
