//! The runtime monitor and dynamic switcher (§5.2, §7.4).
//!
//! When several verified, statically-incomparable implementations exist,
//! Casper emits all of them plus a monitor module. At run time the
//! monitor samples the first k values of the input (5000 in the paper),
//! estimates the unknowns of the cost formulas on the sample, computes
//! each variant's cost, and executes the cheapest.

use std::collections::HashMap;
use std::sync::Arc;

use cost::model::dynamic_cost;
use cost::sym::{StageClass, StageEstimate};
use cost::CostWeights;
use mapreduce::sim::{simulate_job, simulate_job_with_skew};
use mapreduce::{ClusterSpec, Context, Framework, JobStats, StageKind, StageStats};
use seqlang::env::Env;
use seqlang::error::Result;
use seqlang::value::Value;

use crate::plan::{alias_free, CompiledPlan, PlanCache};

/// One generated implementation variant.
#[derive(Clone)]
pub struct Variant {
    pub name: String,
    pub plan: CompiledPlan,
}

impl Variant {
    fn non_ca_flags(&self) -> Vec<bool> {
        self.plan.reduce_props.iter().map(|p| !p.both()).collect()
    }
}

/// The monitor's decision for one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice {
    /// Index of the selected variant.
    pub chosen: usize,
    /// Abstract byte-volume cost of every variant (Eqns 2–4 evaluated on
    /// the sample), by index.
    pub costs: Vec<f64>,
    /// Estimated wall-clock seconds of every variant, by index: the
    /// parameterized cost priced on the monitor's cluster model. This is
    /// the quantity the monitor minimizes.
    pub predicted_seconds: Vec<f64>,
}

/// Per-variant [`PlanCache`]s for iterative execution of a generated
/// program: the monitor may pick a different variant each call, so each
/// keeps its own stage cache.
#[derive(Default)]
pub struct ProgramCache {
    caches: HashMap<usize, PlanCache>,
}

impl ProgramCache {
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Total cache hits across all variants.
    pub fn hits(&self) -> u64 {
        self.caches.values().map(PlanCache::hits).sum()
    }
}

/// One re-tuning decision of an iterative run — the deterministic audit
/// trail of the monitor's observe/compare/switch loop.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningDecision {
    /// Which call to [`GeneratedProgram::run_tuned`] this was (0-based).
    pub iteration: usize,
    /// The variant that executed this iteration.
    pub running: usize,
    /// The monitor's predicted cost for `running`: variant-controlled
    /// seconds on the cluster model. Constant framework overheads and the
    /// input scan are identical for every variant and on both sides of
    /// the comparison, so they are excluded — at small scale they would
    /// drown the signal.
    pub predicted_seconds: f64,
    /// The observed cost: this iteration's recorded stage statistics,
    /// normalized to the model's semantic volumes, priced on the same
    /// cluster model with the same exclusions, seconds.
    pub observed_seconds: f64,
    /// `observed / predicted` (1.0 when the prediction was zero).
    pub ratio: f64,
    /// `Some(v)` when the divergence exceeded the threshold and the
    /// monitor re-tuned: the *next* iteration runs variant `v`.
    pub switched_to: Option<usize>,
}

/// Mutable monitor state threaded through an iterative driver: the
/// sticky variant choice plus the decision trace. Deterministic — every
/// field derives from recorded stage statistics and the cost model, so
/// two runs over the same data produce identical traces at any worker
/// count.
#[derive(Debug, Clone)]
pub struct TuningState {
    /// The variant the next iteration will run; `None` until the first
    /// call picks one.
    pub current: Option<usize>,
    /// Iterations executed so far.
    pub iteration: usize,
    /// Re-tune when `observed/predicted` leaves
    /// `[1/divergence_ratio, divergence_ratio]`.
    pub divergence_ratio: f64,
    /// One entry per iteration.
    pub trace: Vec<TuningDecision>,
}

impl Default for TuningState {
    fn default() -> Self {
        TuningState {
            current: None,
            iteration: 0,
            divergence_ratio: 2.0,
            trace: Vec::new(),
        }
    }
}

impl TuningState {
    pub fn new() -> TuningState {
        TuningState::default()
    }

    /// How many times the monitor switched variants mid-run.
    pub fn retune_count(&self) -> usize {
        self.trace
            .iter()
            .filter(|d| d.switched_to.is_some())
            .count()
    }
}

/// A generated program: verified variants + the sampling monitor.
pub struct GeneratedProgram {
    pub variants: Vec<Variant>,
    /// First-k sample size (the paper samples the first 5000 values).
    pub sample_k: usize,
    pub weights: CostWeights,
    /// Cluster model the monitor prices parameterized costs with.
    pub cluster: ClusterSpec,
    /// Framework whose overheads the pricing assumes.
    pub framework: Framework,
}

impl GeneratedProgram {
    pub fn new(variants: Vec<Variant>) -> GeneratedProgram {
        GeneratedProgram {
            variants,
            sample_k: 5000,
            weights: CostWeights::default(),
            cluster: ClusterSpec::paper(),
            framework: Framework::Spark,
        }
    }

    /// Run the monitor only: sample, estimate, price, choose (no
    /// execution). Every variant's parameterized cost is instantiated
    /// from the first-k sample and priced into estimated wall clock on
    /// the cluster model; the cheapest predicted variant wins, ties
    /// break to the lowest index (the cheapest-by-static-cost candidate,
    /// since the enumerator streams cheapest-first).
    pub fn choose(&self, state: &Env) -> PlanChoice {
        self.appraise(state).0
    }

    /// The full appraisal behind [`choose`](GeneratedProgram::choose):
    /// the choice plus each variant's *variant-controlled* cost in
    /// seconds — total predicted wall clock minus the cost of the same
    /// stage structure with every variant-dependent counter zeroed
    /// (framework overheads and the input scan remain in the baseline).
    /// The tuner compares those: terms identical for every variant would
    /// otherwise drown the predicted-vs-observed signal at small scale.
    fn appraise(&self, state: &Env) -> (PlanChoice, Vec<f64>) {
        self.appraise_with_k(state, self.sample_k)
    }

    /// [`appraise`](GeneratedProgram::appraise) with an explicit sample
    /// size; `usize::MAX` estimates on the full input (re-calibration).
    fn appraise_with_k(&self, state: &Env, k: usize) -> (PlanChoice, Vec<f64>) {
        let sample_state = self.sample_state(state, k);
        let true_counts = |var: &str| -> f64 {
            state
                .get(var)
                .and_then(|v| v.elements().map(|e| e.len() as f64))
                .unwrap_or(0.0)
        };
        let mut costs = Vec::with_capacity(self.variants.len());
        let mut predicted_seconds = Vec::with_capacity(self.variants.len());
        let mut predicted_data = Vec::with_capacity(self.variants.len());
        for v in &self.variants {
            let report = dynamic_cost(
                &v.plan.summary,
                &sample_state,
                &true_counts,
                &v.non_ca_flags(),
                &self.weights,
            );
            costs.push(report.cost);
            let (total, data) = self.price_profile(&report.profile.stages);
            predicted_seconds.push(total);
            predicted_data.push(data);
        }
        let mut chosen = 0usize;
        for (i, s) in predicted_seconds.iter().enumerate() {
            if *s < predicted_seconds[chosen] {
                chosen = i;
            }
        }
        (
            PlanChoice {
                chosen,
                costs,
                predicted_seconds,
            },
            predicted_data,
        )
    }

    /// Price a calibrated profile into estimated wall-clock seconds:
    /// convert each [`StageEstimate`] into synthetic engine stage
    /// statistics and run them through the cluster simulator, with each
    /// stage's measured key skew applied as a straggler multiplier.
    /// Returns `(total seconds, variant-controlled seconds)` — the
    /// latter with the structure's constant framework overheads and the
    /// variant-independent input scan subtracted.
    fn price_profile(&self, stages: &[StageEstimate]) -> (f64, f64) {
        let mut job = JobStats::default();
        let mut skews = Vec::with_capacity(stages.len());
        for est in stages {
            let kind = match est.class {
                StageClass::Input => StageKind::Input,
                StageClass::Map => StageKind::Map,
                StageClass::Shuffle => StageKind::Shuffle,
                StageClass::Join => StageKind::Join,
            };
            let mut s = StageStats::new(kind, "predicted");
            s.records_in = est.records_in.round() as u64;
            s.records_out = est.records_out.round() as u64;
            s.bytes_out = est.bytes_out.round() as u64;
            s.bytes_shuffled = est.bytes_shuffled.round() as u64;
            job.stages.push(s);
            skews.push(est.skew);
        }
        let total = simulate_job_with_skew(&job, &skews, &self.cluster, self.framework).seconds;
        let base =
            simulate_job_with_skew(&masked(&job), &skews, &self.cluster, self.framework).seconds;
        (total, total - base)
    }

    /// Execute: monitor picks the cheapest variant, which then runs on
    /// the engine. Returns the outputs and the decision.
    pub fn run(&self, ctx: &Arc<Context>, state: &Env) -> Result<(Env, PlanChoice)> {
        let choice = self.choose(state);
        let plan = &self.variants[choice.chosen].plan;
        let outputs = plan.execute(ctx, state)?;
        Ok((outputs, choice))
    }

    /// Iterative-driver entry point: like [`run`](GeneratedProgram::run),
    /// but plan-stage cut-points whose inputs are unchanged since the
    /// previous call are served from `cache` instead of recomputed.
    pub fn run_cached(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        cache: &mut ProgramCache,
    ) -> Result<(Env, PlanChoice)> {
        let choice = self.choose(state);
        let plan = &self.variants[choice.chosen].plan;
        let plan_cache = cache.caches.entry(choice.chosen).or_default();
        let outputs = plan.execute_cached(ctx, state, plan_cache)?;
        Ok((outputs, choice))
    }

    /// Iterative execution with mid-run re-tuning (§7.4's dynamic
    /// tuning): run the sticky current variant, price this iteration's
    /// *recorded* stage statistics on the same cluster model the
    /// prediction used, and when observation diverges from prediction by
    /// more than `tuning.divergence_ratio` the first-k sample was
    /// unrepresentative — re-estimate every variant's cost parameters on
    /// the full input (already paid for by this iteration) and switch
    /// the next iteration to the recalibrated winner. Every decision
    /// lands in `tuning.trace`. Fully-cached iterations observe ~zero
    /// cost and are exempt from the divergence check (a cache hit is not
    /// evidence the model was wrong).
    pub fn run_tuned(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        cache: &mut ProgramCache,
        tuning: &mut TuningState,
    ) -> Result<(Env, PlanChoice)> {
        let (choice, predicted_data) = self.appraise(state);
        let running = match tuning.current {
            Some(v) if v < self.variants.len() => v,
            _ => {
                tuning.current = Some(choice.chosen);
                choice.chosen
            }
        };
        let stages_before = ctx.stats().stages.len();
        let plan_cache = cache.caches.entry(running).or_default();
        let outputs = self.variants[running]
            .plan
            .execute_cached(ctx, state, plan_cache)?;
        let observed_stats = normalized(&JobStats {
            stages: ctx.stats().stages.split_off(stages_before),
        });
        let live = observed_stats.stages.iter().any(|s| !s.cached);
        let predicted = predicted_data.get(running).copied().unwrap_or(0.0);
        let observed_total = simulate_job(&observed_stats, &self.cluster, self.framework).seconds;
        let observed_base =
            simulate_job(&masked(&observed_stats), &self.cluster, self.framework).seconds;
        let observed = observed_total - observed_base;
        let ratio = if predicted > 0.0 {
            observed / predicted
        } else if observed > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        let mut switched_to = None;
        if live && (ratio > tuning.divergence_ratio || ratio < 1.0 / tuning.divergence_ratio) {
            // The sample mispredicted; re-estimate on the full input and
            // re-rank every variant under the recalibrated model.
            let (_, recalibrated) = self.appraise_with_k(state, usize::MAX);
            let mut best = 0usize;
            for (j, p) in recalibrated.iter().enumerate() {
                if *p < recalibrated[best] {
                    best = j;
                }
            }
            if best != running {
                switched_to = Some(best);
                tuning.current = Some(best);
            }
        }
        tuning.trace.push(TuningDecision {
            iteration: tuning.iteration,
            running,
            predicted_seconds: predicted,
            observed_seconds: observed,
            ratio,
            switched_to,
        });
        tuning.iteration += 1;
        Ok((
            outputs,
            PlanChoice {
                chosen: running,
                ..choice
            },
        ))
    }

    /// Execute with the alias guard (§3.2): when input collections alias,
    /// fall back to the supplied sequential implementation.
    pub fn run_guarded(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        sequential: &dyn Fn(&Env) -> Result<Env>,
    ) -> Result<(Env, Option<PlanChoice>)> {
        let data_vars: Vec<String> = self
            .variants
            .first()
            .map(|v| {
                v.plan.summary.bindings[0]
                    .expr
                    .sources()
                    .iter()
                    .map(|s| s.var.clone())
                    .collect()
            })
            .unwrap_or_default();
        if !alias_free(state, &data_vars) {
            let out = sequential(state)?;
            return Ok((out, None));
        }
        let (out, choice) = self.run(ctx, state)?;
        Ok((out, Some(choice)))
    }

    /// Build the sampled state: every source collection truncated to the
    /// first `k` values.
    fn sample_state(&self, state: &Env, k: usize) -> Env {
        let mut sampled = state.clone();
        let mut source_vars: Vec<String> = Vec::new();
        for v in &self.variants {
            for b in &v.plan.summary.bindings {
                for s in b.expr.sources() {
                    if !source_vars.contains(&s.var) {
                        source_vars.push(s.var.clone());
                    }
                }
            }
        }
        for var in source_vars {
            if let Some(v) = sampled.get(&var).cloned() {
                let truncated = match v {
                    Value::List(mut xs) => {
                        xs.truncate(k);
                        Value::List(xs)
                    }
                    Value::Array(mut xs) => {
                        xs.truncate(k);
                        Value::Array(xs)
                    }
                    other => other,
                };
                sampled.set(var, truncated);
            }
        }
        sampled
    }
}

/// The same stage structure with every *variant-dependent* counter
/// zeroed: input scans keep their counters (every variant reads the same
/// input), all other stages lose theirs. Pricing it yields the constant
/// framework overheads plus the scan, so `priced(stats) -
/// priced(masked(stats))` isolates the cost the choice of variant
/// actually controls.
fn masked(stats: &JobStats) -> JobStats {
    JobStats {
        stages: stats
            .stages
            .iter()
            .map(|s| {
                if s.kind == StageKind::Input {
                    s.clone()
                } else {
                    let mut z = StageStats::new(s.kind, s.label.clone());
                    z.cached = s.cached;
                    z
                }
            })
            .collect(),
    }
}

/// A worker-invariant view of an observed stage delta, commensurate with
/// the predicted profile. The engine records a `reduceByKey` shuffle's
/// bytes *after* map-side combining — a residue that shrinks with
/// combining and varies with the partition count — while the model
/// prices the semantic pre-combine volume. Replace each shuffle's byte
/// counter with the upstream stage's emitted bytes (its deterministic
/// pre-combine volume); every other counter the simulator prices is
/// already partition-independent.
fn normalized(stats: &JobStats) -> JobStats {
    let mut out = stats.clone();
    for i in 1..out.stages.len() {
        if out.stages[i].kind != StageKind::Shuffle {
            continue;
        }
        let prev = &out.stages[i - 1];
        if prev.records_out == out.stages[i].records_in && prev.bytes_out > 0 {
            out.stages[i].bytes_shuffled = prev.bytes_out;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_ir::expr::IrExpr;
    use casper_ir::lambda::{Emit, MapLambda, ReduceLambda};
    use casper_ir::mr::{DataSource, MrExpr, OutputBinding, OutputKind, ProgramSummary};
    use seqlang::ast::BinOp;
    use seqlang::ty::Type;
    use verifier::CaProperties;

    fn ca() -> CaProperties {
        CaProperties {
            commutative: true,
            associative: true,
        }
    }

    /// StringMatch solution (b): tuple of bools, always one pair.
    fn solution_b() -> Variant {
        let m = MapLambda::new(
            vec!["w"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::Tuple(vec![
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1")),
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key2")),
                ]),
            )],
        );
        let r = ReduceLambda::new(IrExpr::Tuple(vec![
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 0),
                IrExpr::tget(IrExpr::var("v2"), 0),
            ),
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 1),
                IrExpr::tget(IrExpr::var("v2"), 1),
            ),
        ]));
        let expr = MrExpr::Data(DataSource::flat("text", Type::Str))
            .map(m)
            .reduce(r);
        let summary = ProgramSummary {
            bindings: vec![OutputBinding {
                vars: vec!["f1".into(), "f2".into()],
                expr,
                kind: OutputKind::ScalarTuple,
            }],
        };
        Variant {
            name: "b".into(),
            plan: CompiledPlan::new(summary, vec![ca()]),
        }
    }

    /// Solution (c): guarded per-key emits.
    fn solution_c() -> Variant {
        let m = MapLambda::new(
            vec!["w"],
            vec![
                Emit::guarded(
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1")),
                    IrExpr::var("key1"),
                    IrExpr::ConstBool(true),
                ),
                Emit::guarded(
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key2")),
                    IrExpr::var("key2"),
                    IrExpr::ConstBool(true),
                ),
            ],
        );
        let expr = MrExpr::Data(DataSource::flat("text", Type::Str))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Or));
        let summary = ProgramSummary {
            bindings: vec![OutputBinding {
                vars: vec!["f1".into(), "f2".into()],
                expr,
                kind: OutputKind::KeyedScalars {
                    keys: vec![IrExpr::var("key1"), IrExpr::var("key2")],
                },
            }],
        };
        Variant {
            name: "c".into(),
            plan: CompiledPlan::new(summary, vec![ca()]),
        }
    }

    fn stringmatch_state(match_fraction: f64, n: usize) -> Env {
        let words: Vec<Value> = (0..n)
            .map(|i| {
                if (i as f64) < match_fraction * n as f64 {
                    Value::str("cat")
                } else {
                    Value::str(format!("w{i}"))
                }
            })
            .collect();
        let mut st = Env::new();
        st.set("text", Value::List(words));
        st.set("key1", Value::str("cat"));
        st.set("key2", Value::str("dog"));
        st.set("f1", Value::Bool(false));
        st.set("f2", Value::Bool(false));
        st
    }

    #[test]
    fn monitor_picks_c_with_no_matches_and_b_with_high_skew() {
        let prog = GeneratedProgram::new(vec![solution_b(), solution_c()]);
        // Figure 8(c): no matches → (c); 95% matches → (b).
        let low = prog.choose(&stringmatch_state(0.0, 2000));
        assert_eq!(prog.variants[low.chosen].name, "c", "{low:?}");
        let high = prog.choose(&stringmatch_state(0.95, 2000));
        assert_eq!(prog.variants[high.chosen].name, "b", "{high:?}");
    }

    #[test]
    fn chosen_variant_computes_correct_answer() {
        let prog = GeneratedProgram::new(vec![solution_b(), solution_c()]);
        let ctx = Context::with_parallelism(4, 8);
        for frac in [0.0, 0.5, 0.95] {
            let state = stringmatch_state(frac, 500);
            let (out, _) = prog.run(&ctx, &state).unwrap();
            let expect_f1 = frac > 0.0;
            assert_eq!(out.get("f1"), Some(&Value::Bool(expect_f1)), "frac={frac}");
            assert_eq!(out.get("f2"), Some(&Value::Bool(false)));
        }
    }

    #[test]
    fn guard_falls_back_on_aliased_inputs() {
        let prog = GeneratedProgram::new(vec![solution_b()]);
        let ctx = Context::with_parallelism(2, 4);
        let state = stringmatch_state(0.5, 100);
        let sequential = |st: &Env| -> Result<Env> {
            let mut out = Env::new();
            out.set("f1", st.get("f1").cloned().unwrap());
            out.set("f2", st.get("f2").cloned().unwrap());
            Ok(out)
        };
        // No aliasing: plan runs.
        let (_, choice) = prog.run_guarded(&ctx, &state, &sequential).unwrap();
        assert!(choice.is_some());
        // Single data var never aliases with itself; simulate aliasing by
        // a two-source program sharing the same collection.
        // (Covered further in plan::tests::alias_guard_detects_shared_inputs.)
    }

    #[test]
    fn choice_reports_predicted_wall_clock() {
        let prog = GeneratedProgram::new(vec![solution_b(), solution_c()]);
        let choice = prog.choose(&stringmatch_state(0.95, 2000));
        assert_eq!(choice.predicted_seconds.len(), 2);
        assert!(choice
            .predicted_seconds
            .iter()
            .all(|s| s.is_finite() && *s > 0.0));
        // The chosen variant is the predicted-seconds argmin.
        let min = choice
            .predicted_seconds
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert_eq!(choice.predicted_seconds[choice.chosen], min);
    }

    /// A state whose first `prefix` records are all non-matching and the
    /// rest all matching: the first-k sample is unrepresentative, so the
    /// monitor's initial pick diverges from the observed cost and the
    /// tuner must switch variants mid-run.
    fn skewed_prefix_state(prefix: usize, n: usize) -> Env {
        let words: Vec<Value> = (0..n)
            .map(|i| {
                if i < prefix {
                    Value::str(format!("w{i}"))
                } else {
                    Value::str("cat")
                }
            })
            .collect();
        let mut st = Env::new();
        st.set("text", Value::List(words));
        st.set("key1", Value::str("cat"));
        st.set("key2", Value::str("dog"));
        st.set("f1", Value::Bool(false));
        st.set("f2", Value::Bool(false));
        st
    }

    #[test]
    fn tuner_switches_variants_when_observation_diverges() {
        let mut prog = GeneratedProgram::new(vec![solution_b(), solution_c()]);
        prog.sample_k = 100;
        let ctx = Context::with_parallelism(4, 8);
        let state = skewed_prefix_state(100, 4000);
        let mut cache = ProgramCache::new();
        let mut tuning = TuningState::new();

        // Iteration 0: the all-miss sample makes (c) look free; the data
        // beyond the prefix is 97% matches, so the observed shuffle is
        // orders of magnitude over the prediction → switch to (b).
        let (out0, c0) = prog
            .run_tuned(&ctx, &state, &mut cache, &mut tuning)
            .unwrap();
        assert_eq!(prog.variants[c0.chosen].name, "c", "{c0:?}");
        assert_eq!(out0.get("f1"), Some(&Value::Bool(true)));
        let d0 = &tuning.trace[0];
        assert!(d0.ratio > tuning.divergence_ratio, "{d0:?}");
        assert_eq!(d0.switched_to, Some(0), "{d0:?}");

        // Iteration 1: the sticky choice is now (b); same (correct)
        // output.
        let (out1, c1) = prog
            .run_tuned(&ctx, &state, &mut cache, &mut tuning)
            .unwrap();
        assert_eq!(prog.variants[c1.chosen].name, "b", "{c1:?}");
        assert_eq!(out1.get("f1"), Some(&Value::Bool(true)));
        assert_eq!(out1.get("f2"), Some(&Value::Bool(false)));
        assert_eq!(tuning.retune_count(), 1);
        assert_eq!(tuning.trace.len(), 2);
    }

    #[test]
    fn tuner_is_deterministic_across_worker_counts() {
        let run = |workers: usize| {
            let mut prog = GeneratedProgram::new(vec![solution_b(), solution_c()]);
            prog.sample_k = 100;
            let ctx = Context::with_parallelism(workers, workers * 2);
            let state = skewed_prefix_state(100, 4000);
            let mut cache = ProgramCache::new();
            let mut tuning = TuningState::new();
            for _ in 0..3 {
                prog.run_tuned(&ctx, &state, &mut cache, &mut tuning)
                    .unwrap();
            }
            tuning.trace
        };
        let base = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), base, "trace diverged at {workers} workers");
        }
    }

    #[test]
    fn sampling_truncates_large_inputs() {
        let mut prog = GeneratedProgram::new(vec![solution_c()]);
        prog.sample_k = 10;
        let state = stringmatch_state(1.0, 100_000);
        let sampled = prog.sample_state(&state, prog.sample_k);
        assert_eq!(sampled.get("text").unwrap().elements().unwrap().len(), 10);
    }
}
