//! The runtime monitor and dynamic switcher (§5.2, §7.4).
//!
//! When several verified, statically-incomparable implementations exist,
//! Casper emits all of them plus a monitor module. At run time the
//! monitor samples the first k values of the input (5000 in the paper),
//! estimates the unknowns of the cost formulas on the sample, computes
//! each variant's cost, and executes the cheapest.

use std::collections::HashMap;
use std::sync::Arc;

use cost::model::dynamic_cost;
use cost::CostWeights;
use mapreduce::Context;
use seqlang::env::Env;
use seqlang::error::Result;
use seqlang::value::Value;

use crate::plan::{alias_free, CompiledPlan, PlanCache};

/// One generated implementation variant.
#[derive(Clone)]
pub struct Variant {
    pub name: String,
    pub plan: CompiledPlan,
}

impl Variant {
    fn non_ca_flags(&self) -> Vec<bool> {
        self.plan.reduce_props.iter().map(|p| !p.both()).collect()
    }
}

/// The monitor's decision for one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice {
    /// Index of the selected variant.
    pub chosen: usize,
    /// Estimated cost of every variant, by index.
    pub costs: Vec<f64>,
}

/// Per-variant [`PlanCache`]s for iterative execution of a generated
/// program: the monitor may pick a different variant each call, so each
/// keeps its own stage cache.
#[derive(Default)]
pub struct ProgramCache {
    caches: HashMap<usize, PlanCache>,
}

impl ProgramCache {
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Total cache hits across all variants.
    pub fn hits(&self) -> u64 {
        self.caches.values().map(PlanCache::hits).sum()
    }
}

/// A generated program: verified variants + the sampling monitor.
pub struct GeneratedProgram {
    pub variants: Vec<Variant>,
    /// First-k sample size (the paper samples the first 5000 values).
    pub sample_k: usize,
    pub weights: CostWeights,
}

impl GeneratedProgram {
    pub fn new(variants: Vec<Variant>) -> GeneratedProgram {
        GeneratedProgram {
            variants,
            sample_k: 5000,
            weights: CostWeights::default(),
        }
    }

    /// Run the monitor only: sample, estimate, choose (no execution).
    pub fn choose(&self, state: &Env) -> PlanChoice {
        let sample_state = self.sample_state(state);
        let true_counts = |var: &str| -> f64 {
            state
                .get(var)
                .and_then(|v| v.elements().map(|e| e.len() as f64))
                .unwrap_or(0.0)
        };
        let costs: Vec<f64> = self
            .variants
            .iter()
            .map(|v| {
                dynamic_cost(
                    &v.plan.summary,
                    &sample_state,
                    &true_counts,
                    &v.non_ca_flags(),
                    &self.weights,
                )
                .cost
            })
            .collect();
        let chosen = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("costs are finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        PlanChoice { chosen, costs }
    }

    /// Execute: monitor picks the cheapest variant, which then runs on
    /// the engine. Returns the outputs and the decision.
    pub fn run(&self, ctx: &Arc<Context>, state: &Env) -> Result<(Env, PlanChoice)> {
        let choice = self.choose(state);
        let plan = &self.variants[choice.chosen].plan;
        let outputs = plan.execute(ctx, state)?;
        Ok((outputs, choice))
    }

    /// Iterative-driver entry point: like [`run`](GeneratedProgram::run),
    /// but plan-stage cut-points whose inputs are unchanged since the
    /// previous call are served from `cache` instead of recomputed.
    pub fn run_cached(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        cache: &mut ProgramCache,
    ) -> Result<(Env, PlanChoice)> {
        let choice = self.choose(state);
        let plan = &self.variants[choice.chosen].plan;
        let plan_cache = cache.caches.entry(choice.chosen).or_default();
        let outputs = plan.execute_cached(ctx, state, plan_cache)?;
        Ok((outputs, choice))
    }

    /// Execute with the alias guard (§3.2): when input collections alias,
    /// fall back to the supplied sequential implementation.
    pub fn run_guarded(
        &self,
        ctx: &Arc<Context>,
        state: &Env,
        sequential: &dyn Fn(&Env) -> Result<Env>,
    ) -> Result<(Env, Option<PlanChoice>)> {
        let data_vars: Vec<String> = self
            .variants
            .first()
            .map(|v| {
                v.plan.summary.bindings[0]
                    .expr
                    .sources()
                    .iter()
                    .map(|s| s.var.clone())
                    .collect()
            })
            .unwrap_or_default();
        if !alias_free(state, &data_vars) {
            let out = sequential(state)?;
            return Ok((out, None));
        }
        let (out, choice) = self.run(ctx, state)?;
        Ok((out, Some(choice)))
    }

    /// Build the sampled state: every source collection truncated to the
    /// first k values.
    fn sample_state(&self, state: &Env) -> Env {
        let mut sampled = state.clone();
        let mut source_vars: Vec<String> = Vec::new();
        for v in &self.variants {
            for b in &v.plan.summary.bindings {
                for s in b.expr.sources() {
                    if !source_vars.contains(&s.var) {
                        source_vars.push(s.var.clone());
                    }
                }
            }
        }
        for var in source_vars {
            if let Some(v) = sampled.get(&var).cloned() {
                let truncated = match v {
                    Value::List(mut xs) => {
                        xs.truncate(self.sample_k);
                        Value::List(xs)
                    }
                    Value::Array(mut xs) => {
                        xs.truncate(self.sample_k);
                        Value::Array(xs)
                    }
                    other => other,
                };
                sampled.set(var, truncated);
            }
        }
        sampled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_ir::expr::IrExpr;
    use casper_ir::lambda::{Emit, MapLambda, ReduceLambda};
    use casper_ir::mr::{DataSource, MrExpr, OutputBinding, OutputKind, ProgramSummary};
    use seqlang::ast::BinOp;
    use seqlang::ty::Type;
    use verifier::CaProperties;

    fn ca() -> CaProperties {
        CaProperties {
            commutative: true,
            associative: true,
        }
    }

    /// StringMatch solution (b): tuple of bools, always one pair.
    fn solution_b() -> Variant {
        let m = MapLambda::new(
            vec!["w"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::Tuple(vec![
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1")),
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key2")),
                ]),
            )],
        );
        let r = ReduceLambda::new(IrExpr::Tuple(vec![
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 0),
                IrExpr::tget(IrExpr::var("v2"), 0),
            ),
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 1),
                IrExpr::tget(IrExpr::var("v2"), 1),
            ),
        ]));
        let expr = MrExpr::Data(DataSource::flat("text", Type::Str))
            .map(m)
            .reduce(r);
        let summary = ProgramSummary {
            bindings: vec![OutputBinding {
                vars: vec!["f1".into(), "f2".into()],
                expr,
                kind: OutputKind::ScalarTuple,
            }],
        };
        Variant {
            name: "b".into(),
            plan: CompiledPlan::new(summary, vec![ca()]),
        }
    }

    /// Solution (c): guarded per-key emits.
    fn solution_c() -> Variant {
        let m = MapLambda::new(
            vec!["w"],
            vec![
                Emit::guarded(
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1")),
                    IrExpr::var("key1"),
                    IrExpr::ConstBool(true),
                ),
                Emit::guarded(
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key2")),
                    IrExpr::var("key2"),
                    IrExpr::ConstBool(true),
                ),
            ],
        );
        let expr = MrExpr::Data(DataSource::flat("text", Type::Str))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Or));
        let summary = ProgramSummary {
            bindings: vec![OutputBinding {
                vars: vec!["f1".into(), "f2".into()],
                expr,
                kind: OutputKind::KeyedScalars {
                    keys: vec![IrExpr::var("key1"), IrExpr::var("key2")],
                },
            }],
        };
        Variant {
            name: "c".into(),
            plan: CompiledPlan::new(summary, vec![ca()]),
        }
    }

    fn stringmatch_state(match_fraction: f64, n: usize) -> Env {
        let words: Vec<Value> = (0..n)
            .map(|i| {
                if (i as f64) < match_fraction * n as f64 {
                    Value::str("cat")
                } else {
                    Value::str(format!("w{i}"))
                }
            })
            .collect();
        let mut st = Env::new();
        st.set("text", Value::List(words));
        st.set("key1", Value::str("cat"));
        st.set("key2", Value::str("dog"));
        st.set("f1", Value::Bool(false));
        st.set("f2", Value::Bool(false));
        st
    }

    #[test]
    fn monitor_picks_c_with_no_matches_and_b_with_high_skew() {
        let prog = GeneratedProgram::new(vec![solution_b(), solution_c()]);
        // Figure 8(c): no matches → (c); 95% matches → (b).
        let low = prog.choose(&stringmatch_state(0.0, 2000));
        assert_eq!(prog.variants[low.chosen].name, "c", "{low:?}");
        let high = prog.choose(&stringmatch_state(0.95, 2000));
        assert_eq!(prog.variants[high.chosen].name, "b", "{high:?}");
    }

    #[test]
    fn chosen_variant_computes_correct_answer() {
        let prog = GeneratedProgram::new(vec![solution_b(), solution_c()]);
        let ctx = Context::with_parallelism(4, 8);
        for frac in [0.0, 0.5, 0.95] {
            let state = stringmatch_state(frac, 500);
            let (out, _) = prog.run(&ctx, &state).unwrap();
            let expect_f1 = frac > 0.0;
            assert_eq!(out.get("f1"), Some(&Value::Bool(expect_f1)), "frac={frac}");
            assert_eq!(out.get("f2"), Some(&Value::Bool(false)));
        }
    }

    #[test]
    fn guard_falls_back_on_aliased_inputs() {
        let prog = GeneratedProgram::new(vec![solution_b()]);
        let ctx = Context::with_parallelism(2, 4);
        let state = stringmatch_state(0.5, 100);
        let sequential = |st: &Env| -> Result<Env> {
            let mut out = Env::new();
            out.set("f1", st.get("f1").cloned().unwrap());
            out.set("f2", st.get("f2").cloned().unwrap());
            Ok(out)
        };
        // No aliasing: plan runs.
        let (_, choice) = prog.run_guarded(&ctx, &state, &sequential).unwrap();
        assert!(choice.is_some());
        // Single data var never aliases with itself; simulate aliasing by
        // a two-source program sharing the same collection.
        // (Covered further in plan::tests::alias_guard_detects_shared_inputs.)
    }

    #[test]
    fn sampling_truncates_large_inputs() {
        let mut prog = GeneratedProgram::new(vec![solution_c()]);
        prog.sample_k = 10;
        let state = stringmatch_state(1.0, 100_000);
        let sampled = prog.sample_state(&state);
        assert_eq!(sampled.get("text").unwrap().elements().unwrap().len(), 10);
    }
}
