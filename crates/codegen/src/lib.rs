//! `codegen` — Casper's code generator (§6.3, Appendix C).
//!
//! Takes verified program summaries and produces:
//!
//! * an **executable plan** over the `mapreduce` engine ([`plan`]):
//!   map stages become `flatMapToPair`, reduces become `reduceByKey` when
//!   the transformer is commutative and associative or a safe
//!   `groupByKey` + ordered fold otherwise, joins become `join`;
//! * **target-API source text** in three dialects — Spark, Hadoop, Flink
//!   ([`emit`]) — following the translation rules of Appendix C (the LOC
//!   and operator counts of Table 2 are measured on this output);
//! * the **runtime monitor** (§5.2, [`monitor`]): when several verified
//!   variants survive static pruning, the generated program samples the
//!   first k input values at run time, estimates the cost-model unknowns,
//!   and executes the cheapest variant;
//! * **alias guards** (§3.2): generated code is guarded by a runtime
//!   distinctness check over its input collections, falling back to the
//!   original sequential fragment when inputs alias.

pub mod emit;
pub mod monitor;
pub mod plan;

pub use emit::{generated_code, Dialect};
pub use monitor::{
    GeneratedProgram, PlanChoice, ProgramCache, TuningDecision, TuningState, Variant,
};
pub use plan::{alias_free, CompiledPlan, PlanCache};
