//! Static and dynamic evaluation of the cost model over summaries.

use std::collections::HashMap;

use casper_ir::eval::EvalCtx;
use casper_ir::mr::{MrExpr, ProgramSummary};
use casper_ir::size::emit_size_bytes;
use seqlang::env::Env;
use seqlang::ty::Type;
use seqlang::value::Value;

use crate::sym::{ParamCost, StageClass, StageEstimate, SymCost};
use crate::CostWeights;

/// The cost model: weights plus a type environment for static sizing.
#[derive(Default)]
pub struct CostModel {
    pub weights: CostWeights,
}

/// Static (symbolic) cost of a summary, per input record (§5.1).
///
/// Conditional emits introduce unknowns `p1, p2, …` in pipeline order.
/// Approximations (documented in DESIGN.md): stages downstream of the
/// first reduce process only the per-key residue and are not charged;
/// join selectivity is the unknown `pj`. `non_ca` flags the reduce stages
/// (in pipeline order) whose transformer failed the CA analysis — those
/// pay the `Wcsg` penalty of Eqn 3.
pub fn static_cost(
    summary: &ProgramSummary,
    type_of: &dyn Fn(&str) -> Option<Type>,
    non_ca: &[bool],
    weights: &CostWeights,
) -> SymCost {
    let mut total = SymCost::constant(0.0);
    let mut prob_counter = 0usize;
    let mut reduce_counter = 0usize;
    for binding in &summary.bindings {
        let (cost, _mult, _pair) = stage_cost(
            &binding.expr,
            type_of,
            non_ca,
            weights,
            &mut prob_counter,
            &mut reduce_counter,
        );
        total.add(&cost);
    }
    total
}

/// Record-count multiplier flowing between stages: `base + Σ coef·p`.
#[derive(Clone)]
struct Mult {
    inner: SymCost,
}

impl Mult {
    fn one() -> Mult {
        Mult {
            inner: SymCost::constant(1.0),
        }
    }
    fn zero() -> Mult {
        Mult {
            inner: SymCost::constant(0.0),
        }
    }
}

fn stage_cost(
    expr: &MrExpr,
    type_of: &dyn Fn(&str) -> Option<Type>,
    non_ca: &[bool],
    weights: &CostWeights,
    prob_counter: &mut usize,
    reduce_counter: &mut usize,
) -> (SymCost, Mult, f64) {
    match expr {
        MrExpr::Data(_) => (SymCost::constant(0.0), Mult::one(), 48.0),
        MrExpr::Map(inner, lambda) => {
            let (mut cost, mult, _pair) = stage_cost(
                inner,
                type_of,
                non_ca,
                weights,
                prob_counter,
                reduce_counter,
            );
            // Parameter types: bind λ params through `type_of` fallback.
            let lookup = |name: &str| type_of(name);
            let mut out_mult = SymCost::constant(0.0);
            let mut pair_size = 0.0f64;
            for emit in &lambda.emits {
                let size = emit_size_bytes(emit, &lookup) as f64;
                pair_size = pair_size.max(size);
                match &emit.cond {
                    None => {
                        // size · mult records per input.
                        cost.add(&mult.inner.scale(weights.wm * size));
                        out_mult.add(&mult.inner);
                    }
                    Some(_) => {
                        *prob_counter += 1;
                        let p = format!("p{}", prob_counter);
                        if mult.inner.terms.is_empty() {
                            let coef = mult.inner.base;
                            cost.add_term(p.clone(), weights.wm * size * coef);
                            out_mult.add_term(p, coef);
                        } else {
                            // Probability products would be non-linear;
                            // approximate the guarded term with the new
                            // unknown alone (upper-bounded by it).
                            cost.add_term(p.clone(), weights.wm * size);
                            out_mult.add_term(p, 1.0);
                        }
                    }
                }
            }
            (cost, Mult { inner: out_mult }, pair_size)
        }
        MrExpr::Reduce(inner, lambda) => {
            let (mut cost, mult, pair_size) = stage_cost(
                inner,
                type_of,
                non_ca,
                weights,
                prob_counter,
                reduce_counter,
            );
            // Eqn 3 prices the reducer on the records it shuffles and
            // combines: the key/value pair size of its input (Figure 8(d)
            // charges λr of solution (a) at the full 50-byte pair).
            let _ = &lambda.body;
            let size = pair_size;
            let eps = if non_ca.get(*reduce_counter).copied().unwrap_or(false) {
                weights.wcsg
            } else {
                1.0
            };
            *reduce_counter += 1;
            cost.add(&mult.inner.scale(weights.wr * size * eps));
            // Downstream of a reduce only per-key residues flow;
            // statically negligible.
            (cost, Mult::zero(), size)
        }
        MrExpr::Join(l, r) => {
            let (cl, _, _) = stage_cost(l, type_of, non_ca, weights, prob_counter, reduce_counter);
            let (cr, _, _) = stage_cost(r, type_of, non_ca, weights, prob_counter, reduce_counter);
            let mut cost = SymCost::constant(0.0);
            cost.add(&cl);
            cost.add(&cr);
            // Join output priced with the unknown selectivity `pj`.
            *prob_counter += 1;
            let pj = format!("pj{}", prob_counter);
            cost.add_term(pj.clone(), weights.wj * 48.0);
            let mut out = SymCost::constant(0.0);
            out.add_term(pj, 1.0);
            (cost, Mult { inner: out }, 48.0)
        }
    }
}

/// Dynamic cost report for one candidate (what the runtime monitor
/// computes from the first-k sample, §5.2).
#[derive(Debug, Clone)]
pub struct DynCostReport {
    pub cost: f64,
    /// Estimated probability assignments, in stage order.
    pub probabilities: Vec<f64>,
    /// Estimated unique keys at each reduce.
    pub unique_keys: Vec<f64>,
    /// The parameterized cost: every stage's record count, byte volume,
    /// selectivity, key cardinality and skew, extrapolated from the
    /// sample — what the cluster model prices into wall-clock seconds.
    pub profile: ParamCost,
}

/// Evaluate the cost model numerically against a *sampled* pre-loop state
/// (the fragment's data truncated to the first k records) and the true
/// per-source record counts.
///
/// The pipeline is executed on the sample; each stage's record counts,
/// byte volumes, guard selectivities and key cardinalities are measured
/// and extrapolated to the full dataset through Eqns 2–4.
pub fn dynamic_cost(
    summary: &ProgramSummary,
    sample_state: &Env,
    true_counts: &dyn Fn(&str) -> f64,
    non_ca: &[bool],
    weights: &CostWeights,
) -> DynCostReport {
    let ctx = EvalCtx::new(sample_state);
    let mut report = DynCostReport {
        cost: 0.0,
        probabilities: Vec::new(),
        unique_keys: Vec::new(),
        profile: ParamCost::default(),
    };
    let mut reduce_counter = 0usize;
    for binding in &summary.bindings {
        walk_dynamic(
            &binding.expr,
            &ctx,
            true_counts,
            non_ca,
            weights,
            &mut reduce_counter,
            &mut report,
        );
    }
    report
}

/// Returns (sample rows, estimated true record count).
fn walk_dynamic(
    expr: &MrExpr,
    ctx: &EvalCtx<'_>,
    true_counts: &dyn Fn(&str) -> f64,
    non_ca: &[bool],
    weights: &CostWeights,
    reduce_counter: &mut usize,
    report: &mut DynCostReport,
) -> (Vec<Vec<Value>>, f64) {
    match expr {
        MrExpr::Data(src) => {
            let rows = ctx.eval_mr(expr).unwrap_or_default();
            let n = true_counts(&src.var);
            let mut est = StageEstimate::new(StageClass::Input);
            est.records_in = n;
            est.records_out = n;
            est.bytes_out = avg_row_bytes(&rows) * n;
            est.selectivity = 1.0;
            report.profile.stages.push(est);
            (rows, n)
        }
        MrExpr::Map(inner, _lambda) => {
            let (rows_in, n_in) = walk_dynamic(
                inner,
                ctx,
                true_counts,
                non_ca,
                weights,
                reduce_counter,
                report,
            );
            let rows_out = ctx.eval_mr(expr).unwrap_or_default();
            let (bytes_out, selectivity) = sample_ratios(&rows_in, &rows_out);
            report.probabilities.push(selectivity);
            report.cost += weights.wm * n_in * bytes_out;
            let mut est = StageEstimate::new(StageClass::Map);
            est.records_in = n_in;
            est.records_out = n_in * selectivity;
            est.bytes_out = n_in * bytes_out;
            est.selectivity = selectivity;
            report.profile.stages.push(est);
            (rows_out, n_in * selectivity)
        }
        MrExpr::Reduce(inner, _lambda) => {
            let (rows_in, n_in) = walk_dynamic(
                inner,
                ctx,
                true_counts,
                non_ca,
                weights,
                reduce_counter,
                report,
            );
            let rows_out = ctx.eval_mr(expr).unwrap_or_default();
            let in_size = avg_row_bytes(&rows_in);
            let eps = if non_ca.get(*reduce_counter).copied().unwrap_or(false) {
                weights.wcsg
            } else {
                1.0
            };
            *reduce_counter += 1;
            report.cost += weights.wr * n_in * in_size * eps;
            // Unique keys: distinct in sample; if every sampled record had
            // a distinct key, cardinality tracks the data.
            let distinct = rows_out.len() as f64;
            let est_keys = if !rows_in.is_empty() && distinct >= rows_in.len() as f64 {
                n_in
            } else {
                distinct
            };
            report.unique_keys.push(est_keys);
            let mut est = StageEstimate::new(StageClass::Shuffle);
            est.records_in = n_in;
            est.records_out = est_keys;
            est.bytes_out = est_keys * in_size;
            est.bytes_shuffled = n_in * in_size;
            est.selectivity = if n_in > 0.0 { est_keys / n_in } else { 0.0 };
            est.distinct_keys = est_keys;
            // A CA reduce is combined map-side: each partition forwards
            // one residue per key, so a hot key never concentrates load
            // on the busiest reducer. Only non-CA reduces shuffle their
            // raw records and inherit the key skew as a straggler.
            est.skew = if eps > 1.0 {
                max_key_share(&rows_in)
            } else {
                0.0
            };
            report.profile.stages.push(est);
            (rows_out, est_keys)
        }
        MrExpr::Join(l, r) => {
            let (rows_l, n_l) =
                walk_dynamic(l, ctx, true_counts, non_ca, weights, reduce_counter, report);
            let (rows_r, n_r) =
                walk_dynamic(r, ctx, true_counts, non_ca, weights, reduce_counter, report);
            let rows_out = ctx.eval_mr(expr).unwrap_or_default();
            let pairs = (rows_l.len() as f64) * (rows_r.len() as f64);
            let selectivity = if pairs > 0.0 {
                rows_out.len() as f64 / pairs
            } else {
                0.0
            };
            report.probabilities.push(selectivity);
            let size = avg_row_bytes(&rows_out);
            report.cost += weights.wj * n_l * n_r * selectivity * size;
            let est = n_l * n_r * selectivity;
            let mut stage = StageEstimate::new(StageClass::Join);
            stage.records_in = n_l + n_r;
            stage.records_out = est;
            stage.bytes_out = est * size;
            // Both join inputs cross the wire.
            stage.bytes_shuffled = n_l * avg_row_bytes(&rows_l) + n_r * avg_row_bytes(&rows_r);
            stage.selectivity = selectivity;
            let distinct = distinct_keys(&rows_out) as f64;
            stage.distinct_keys = if !rows_out.is_empty() && distinct >= rows_out.len() as f64 {
                est
            } else {
                distinct
            };
            // The busiest join reducer receives every record (from both
            // sides) that hashes to its hottest key — measure the share
            // on the shuffled inputs, not on the join's output.
            let combined: Vec<Vec<Value>> = rows_l.iter().chain(rows_r.iter()).cloned().collect();
            stage.skew = max_key_share(&combined);
            report.profile.stages.push(stage);
            (rows_out, est)
        }
    }
}

/// (average output bytes per input record, output/input record ratio).
fn sample_ratios(rows_in: &[Vec<Value>], rows_out: &[Vec<Value>]) -> (f64, f64) {
    if rows_in.is_empty() {
        return (0.0, 0.0);
    }
    let bytes: u64 = rows_out
        .iter()
        .map(|r| 8 + r.iter().map(Value::size_bytes).sum::<u64>())
        .sum();
    (
        bytes as f64 / rows_in.len() as f64,
        rows_out.len() as f64 / rows_in.len() as f64,
    )
}

fn avg_row_bytes(rows: &[Vec<Value>]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let bytes: u64 = rows
        .iter()
        .map(|r| 8 + r.iter().map(Value::size_bytes).sum::<u64>())
        .sum();
    bytes as f64 / rows.len() as f64
}

/// The key of a sampled key/value row: the first field for pair-shaped
/// rows, the whole row otherwise.
fn row_key(row: &[Value]) -> &[Value] {
    if row.len() == 2 {
        &row[..1]
    } else {
        row
    }
}

/// Per-key multiplicities of the sampled rows.
fn key_counts(rows: &[Vec<Value>]) -> HashMap<&[Value], usize> {
    let mut counts: HashMap<&[Value], usize> = HashMap::new();
    for row in rows {
        *counts.entry(row_key(row)).or_insert(0) += 1;
    }
    counts
}

fn distinct_keys(rows: &[Vec<Value>]) -> usize {
    key_counts(rows).len()
}

/// The largest single key's share of the sampled rows — the skew
/// parameter of the parameterized cost ([`StageEstimate::skew`]): the
/// busiest reducer processes at least this fraction of the shuffle.
fn max_key_share(rows: &[Vec<Value>]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let max = key_counts(rows).values().copied().max().unwrap_or(0);
    max as f64 / rows.len() as f64
}

/// Drop statically dominated candidates: keep a summary only if no other
/// kept summary is cheaper for every probability assignment (§5.2's
/// compile-time pruning; kills Figure 8's solution (a)).
pub fn prune_dominated(
    summaries: Vec<(ProgramSummary, SymCost)>,
) -> Vec<(ProgramSummary, SymCost)> {
    let mut kept: Vec<(ProgramSummary, SymCost)> = Vec::new();
    'outer: for (cand, cost) in summaries {
        for (_, other_cost) in &kept {
            if cost.dominates(other_cost) && cost != *other_cost {
                continue 'outer; // strictly worse than something we keep
            }
        }
        // Remove previously kept summaries the new one strictly beats.
        kept.retain(|(_, oc)| !(oc.dominates(&cost) && *oc != cost));
        kept.push((cand, cost));
    }
    kept
}

/// Type lookup assembled from λ parameters, free scalars, and struct
/// field paths — the form `static_cost` consumes.
pub fn type_env(pairs: &[(&str, Type)]) -> impl Fn(&str) -> Option<Type> + 'static {
    let map: HashMap<String, Type> = pairs
        .iter()
        .map(|(n, t)| (n.to_string(), t.clone()))
        .collect();
    move |name: &str| map.get(name).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casper_ir::expr::IrExpr;
    use casper_ir::lambda::{Emit, MapLambda, ReduceLambda};
    use casper_ir::mr::{DataSource, OutputKind};
    use seqlang::ast::BinOp;

    /// Figure 8(d) solution (a): two unconditional (String, Bool) emits,
    /// reduce OR.
    fn stringmatch_a() -> ProgramSummary {
        let m = MapLambda::new(
            vec!["w"],
            vec![
                Emit::unconditional(
                    IrExpr::var("key1"),
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1")),
                ),
                Emit::unconditional(
                    IrExpr::var("key2"),
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key2")),
                ),
            ],
        );
        let expr = MrExpr::Data(DataSource::flat("text", Type::Str))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Or));
        ProgramSummary {
            bindings: vec![casper_ir::mr::OutputBinding {
                vars: vec!["f1".into(), "f2".into()],
                expr,
                kind: OutputKind::KeyedScalars {
                    keys: vec![IrExpr::var("key1"), IrExpr::var("key2")],
                },
            }],
        }
    }

    /// Solution (b): single (Bool, Bool)-tuple pair.
    fn stringmatch_b() -> ProgramSummary {
        let m = MapLambda::new(
            vec!["w"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::Tuple(vec![
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1")),
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key2")),
                ]),
            )],
        );
        let r = ReduceLambda::new(IrExpr::Tuple(vec![
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 0),
                IrExpr::tget(IrExpr::var("v2"), 0),
            ),
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 1),
                IrExpr::tget(IrExpr::var("v2"), 1),
            ),
        ]));
        let expr = MrExpr::Data(DataSource::flat("text", Type::Str))
            .map(m)
            .reduce(r);
        ProgramSummary {
            bindings: vec![casper_ir::mr::OutputBinding {
                vars: vec!["f1".into(), "f2".into()],
                expr,
                kind: OutputKind::ScalarTuple,
            }],
        }
    }

    /// Solution (c): guarded emits, only matches emitted.
    fn stringmatch_c() -> ProgramSummary {
        let m = MapLambda::new(
            vec!["w"],
            vec![
                Emit::guarded(
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1")),
                    IrExpr::var("key1"),
                    IrExpr::ConstBool(true),
                ),
                Emit::guarded(
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key2")),
                    IrExpr::var("key2"),
                    IrExpr::ConstBool(true),
                ),
            ],
        );
        let expr = MrExpr::Data(DataSource::flat("text", Type::Str))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Or));
        ProgramSummary {
            bindings: vec![casper_ir::mr::OutputBinding {
                vars: vec!["f1".into(), "f2".into()],
                expr,
                kind: OutputKind::KeyedScalars {
                    keys: vec![IrExpr::var("key1"), IrExpr::var("key2")],
                },
            }],
        }
    }

    fn sm_types() -> impl Fn(&str) -> Option<Type> {
        |name: &str| match name {
            "w" | "key1" | "key2" => Some(Type::Str),
            _ => None,
        }
    }

    #[test]
    fn figure8d_static_costs() {
        let w = CostWeights::default();
        let ty = sm_types();
        // Solution (a): λm 2·(40+10)·N = 100N; λr 2·2·50·N = 200N (two
        // records per input, Wr = 2, 50-byte pair) → 300N, exactly the
        // paper's Figure 8(d) total.
        let a = static_cost(&stringmatch_a(), &ty, &[], &w);
        assert!(a.terms.is_empty());
        assert!((a.base - 300.0).abs() < 1e-9, "a = {}", a.display());

        // Solution (b): λm (4+28)·N = 32N (int key + (Bool,Bool) tuple);
        // λr 2·32·N = 64N → 96N (paper: 84N with a keyless pair).
        let b = static_cost(&stringmatch_b(), &ty, &[], &w);
        assert!((b.base - 96.0).abs() < 1e-9, "b = {}", b.display());

        // Solution (c): (p1+p2)·50·N for λm plus (p1+p2)·2·50·N for λr
        // → 150(p1 + p2)·N, exactly the paper's total.
        let c = static_cost(&stringmatch_c(), &ty, &[], &w);
        assert!(c.base.abs() < 1e-9);
        assert!((c.terms["p1"] - 150.0).abs() < 1e-9, "c = {}", c.display());
        assert!((c.terms["p2"] - 150.0).abs() < 1e-9);
    }

    #[test]
    fn solution_a_statically_dominated_by_b() {
        let w = CostWeights::default();
        let ty = sm_types();
        let a = static_cost(&stringmatch_a(), &ty, &[], &w);
        let b = static_cost(&stringmatch_b(), &ty, &[], &w);
        let c = static_cost(&stringmatch_c(), &ty, &[], &w);
        assert!(a.dominates(&b), "a must be droppable at compile time");
        assert!(
            !b.dominates(&c) && !c.dominates(&b),
            "b vs c needs runtime data"
        );

        let pruned = prune_dominated(vec![
            (stringmatch_a(), a),
            (stringmatch_b(), b),
            (stringmatch_c(), c),
        ]);
        assert_eq!(pruned.len(), 2, "exactly (b) and (c) survive");
    }

    #[test]
    fn dynamic_cost_crossover_with_skew() {
        // Figure 8(b)/(c): with no matches (c) is free; with ~95% matches
        // (b) wins.
        let w = CostWeights::default();
        let mk_state = |match_frac: f64| -> Env {
            let n = 100usize;
            let words: Vec<Value> = (0..n)
                .map(|i| {
                    if (i as f64) < match_frac * n as f64 {
                        Value::str("cat")
                    } else {
                        Value::str(format!("w{i}"))
                    }
                })
                .collect();
            let mut st = Env::new();
            st.set("text", Value::List(words));
            st.set("key1", Value::str("cat"));
            st.set("key2", Value::str("dog"));
            st.set("f1", Value::Bool(false));
            st.set("f2", Value::Bool(false));
            st
        };
        let n_true = |_: &str| 1.0e9;

        let st_low = mk_state(0.0);
        let b_low = dynamic_cost(&stringmatch_b(), &st_low, &n_true, &[], &w).cost;
        let c_low = dynamic_cost(&stringmatch_c(), &st_low, &n_true, &[], &w).cost;
        assert!(
            c_low < b_low,
            "no matches: (c) emits nothing ({c_low} vs {b_low})"
        );

        let st_high = mk_state(0.95);
        let b_high = dynamic_cost(&stringmatch_b(), &st_high, &n_true, &[], &w).cost;
        let c_high = dynamic_cost(&stringmatch_c(), &st_high, &n_true, &[], &w).cost;
        assert!(
            b_high < c_high,
            "95% matches: (b) wins ({b_high} vs {c_high})"
        );
    }

    #[test]
    fn non_ca_reduce_pays_wcsg() {
        let w = CostWeights::default();
        let ty = sm_types();
        let base = static_cost(&stringmatch_b(), &ty, &[false], &w).base;
        let penalised = static_cost(&stringmatch_b(), &ty, &[true], &w).base;
        assert!((penalised - base) > 1.0);
        assert!((penalised / base) > 5.0, "{penalised} vs {base}");
    }
}
