//! `cost` — Casper's data-centric cost model (§5.1) and dynamic cost
//! estimation (§5.2).
//!
//! The model prices a summary by the bytes it generates and shuffles, not
//! by compute:
//!
//! ```text
//! costm(λm, N, Wm) = Wm · N · Σᵢ sizeOf(emitᵢ) · pᵢ          (Eqn 2)
//! costr(λr, N, Wr) = Wr · N · sizeOf(λr) · ε(λr)             (Eqn 3)
//! costj(N₁, N₂, Wj) = Wj · N₁ · N₂ · sizeOf(emitj) · pj      (Eqn 4)
//! ```
//!
//! with weights `Wm = 1`, `Wr = 2`, `Wj = 2` and non-CA penalty
//! `Wcsg = 50` (the paper's empirical values). Costs of pipelines compose
//! by threading the record count produced by each stage into the next.
//!
//! Two evaluation modes:
//! * [`static_cost`] — symbolic: conditional-emit probabilities stay as
//!   unknowns `p₁, p₂, …` ([`SymCost`]), enabling the compile-time
//!   dominance pruning of §5.2 (solution (a) of Figure 8 is dominated for
//!   *all* probability assignments and can be dropped statically);
//! * [`dynamic_cost`] — numeric: the runtime monitor samples the first k
//!   input values, estimates every `pᵢ` and the unique-key counts on the
//!   sample, and plugs them into the same formulas.

pub mod model;
pub mod sym;

pub use model::{dynamic_cost, static_cost, CostModel, DynCostReport};
pub use sym::{ParamCost, StageClass, StageEstimate, SymCost};

/// The paper's cost-model weights (§5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    pub wm: f64,
    pub wr: f64,
    pub wj: f64,
    pub wcsg: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            wm: 1.0,
            wr: 2.0,
            wj: 2.0,
            wcsg: 50.0,
        }
    }
}
