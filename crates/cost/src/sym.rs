//! Symbolic per-record costs: linear functions over unknown emit
//! probabilities.

use std::collections::BTreeMap;

/// A cost of the form `N · (base + Σ coefᵢ · pᵢ)` where each `pᵢ ∈ [0,1]`
/// is the unknown probability of a conditional emit (or join selectivity).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymCost {
    /// Probability-independent bytes per input record.
    pub base: f64,
    /// Coefficients of the unknowns, keyed by probability name.
    pub terms: BTreeMap<String, f64>,
}

impl SymCost {
    pub fn constant(base: f64) -> SymCost {
        SymCost {
            base,
            terms: BTreeMap::new(),
        }
    }

    pub fn add_term(&mut self, name: impl Into<String>, coef: f64) {
        *self.terms.entry(name.into()).or_insert(0.0) += coef;
    }

    pub fn add(&mut self, other: &SymCost) {
        self.base += other.base;
        for (k, v) in &other.terms {
            *self.terms.entry(k.clone()).or_insert(0.0) += v;
        }
    }

    pub fn scale(&self, factor: f64) -> SymCost {
        SymCost {
            base: self.base * factor,
            terms: self
                .terms
                .iter()
                .map(|(k, v)| (k.clone(), v * factor))
                .collect(),
        }
    }

    /// Evaluate with concrete probability assignments; missing unknowns
    /// default to `default_p`.
    pub fn eval(&self, probs: &BTreeMap<String, f64>, default_p: f64) -> f64 {
        self.base
            + self
                .terms
                .iter()
                .map(|(k, c)| c * probs.get(k).copied().unwrap_or(default_p))
                .sum::<f64>()
    }

    /// Collapse to a scalar at the all-ones probability assignment: every
    /// conditional emit fires, every join matches. This is the worst-case
    /// byte volume of the summary and the ordering key the enumerator's
    /// cheapest-first candidate stream uses (the single cost model shared
    /// with final ranking — see `model::static_cost`).
    pub fn upper_bound(&self) -> f64 {
        self.base + self.terms.values().sum::<f64>()
    }

    /// Does `self` cost at least as much as `other` for *every* assignment
    /// of the unknowns in `[0,1]`? Both costs are linear in each `pᵢ`, so
    /// checking all corner assignments of the union of unknowns is exact.
    pub fn dominates(&self, other: &SymCost) -> bool {
        let mut names: Vec<&String> = self.terms.keys().collect();
        for k in other.terms.keys() {
            if !names.contains(&k) {
                names.push(k);
            }
        }
        let k = names.len();
        if k > 16 {
            // Too many unknowns for corner enumeration; be conservative.
            return false;
        }
        for mask in 0..(1u32 << k) {
            let assignment: BTreeMap<String, f64> = names
                .iter()
                .enumerate()
                .map(|(i, n)| ((*n).clone(), if mask & (1 << i) != 0 { 1.0 } else { 0.0 }))
                .collect();
            if self.eval(&assignment, 0.0) < other.eval(&assignment, 0.0) - 1e-9 {
                return false;
            }
        }
        true
    }

    /// Render like the paper's Figure 8(d) "Total" column, e.g.
    /// `150(p1 + p2)` or `84`.
    pub fn display(&self) -> String {
        let mut parts = Vec::new();
        if self.base != 0.0 || self.terms.is_empty() {
            parts.push(
                format!("{:.6}", self.base)
                    .trim_end_matches('0')
                    .trim_end_matches('.')
                    .to_string(),
            );
        }
        // Group terms with the same coefficient.
        let mut by_coef: BTreeMap<String, Vec<&String>> = BTreeMap::new();
        for (name, coef) in &self.terms {
            by_coef
                .entry(
                    format!("{:.6}", coef)
                        .trim_end_matches('0')
                        .trim_end_matches('.')
                        .to_string(),
                )
                .or_default()
                .push(name);
        }
        for (coef, names) in by_coef {
            let inner: Vec<String> = names.iter().map(|n| n.to_string()).collect();
            parts.push(format!("{coef}({})", inner.join(" + ")));
        }
        format!("{}·N", parts.join(" + "))
    }
}

/// What kind of physical work a calibrated stage performs. Mirrors the
/// engine's stage taxonomy without depending on it — `cost` sits below
/// the engine crates in the dependency order, so the optimizer converts
/// a [`StageEstimate`] into real engine stage statistics one level up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageClass {
    /// Data ingestion (HDFS scan / parallelize).
    Input,
    /// Narrow transformation: no shuffle.
    Map,
    /// Shuffling aggregation (reduceByKey / groupByKey).
    Shuffle,
    /// Equi-join: both inputs cross the wire.
    Join,
}

/// One stage of a parameterized cost: the symbolic unknowns of
/// [`SymCost`] (§5.1) instantiated from a bounded input prefix — record
/// count `n`, key cardinality `d`, selectivity `s`, and key skew.
#[derive(Debug, Clone, PartialEq)]
pub struct StageEstimate {
    pub class: StageClass,
    /// Extrapolated records flowing into the stage (`n`).
    pub records_in: f64,
    /// Extrapolated records the stage emits (`n · s`).
    pub records_out: f64,
    /// Extrapolated bytes the stage emits.
    pub bytes_out: f64,
    /// Bytes crossing the (simulated) network at a shuffle/join boundary.
    pub bytes_shuffled: f64,
    /// Output/input record ratio measured on the sample (`s`).
    pub selectivity: f64,
    /// Estimated distinct keys reaching the stage (`d`); meaningful for
    /// shuffles and joins, zero for narrow stages.
    pub distinct_keys: f64,
    /// The largest single key's fraction of the stage's input records,
    /// measured on the sample (`∈ [0, 1]`; `1/d` when uniform, `0` when
    /// unknown). The cluster model prices it as a straggler multiplier:
    /// the busiest reducer processes at least this share of the shuffle.
    pub skew: f64,
}

impl StageEstimate {
    pub fn new(class: StageClass) -> StageEstimate {
        StageEstimate {
            class,
            records_in: 0.0,
            records_out: 0.0,
            bytes_out: 0.0,
            bytes_shuffled: 0.0,
            selectivity: 0.0,
            distinct_keys: 0.0,
            skew: 0.0,
        }
    }
}

/// A parameterized cost: one candidate's per-stage calibrated profile on
/// one dataset. [`SymCost`] is the compile-time symbolic shape used for
/// dominance pruning and candidate ordering; `ParamCost` is that shape
/// with every unknown instantiated from the first-k sample, ready to be
/// priced into estimated wall clock by the cluster model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamCost {
    pub stages: Vec<StageEstimate>,
}

impl ParamCost {
    /// Total bytes predicted to cross the network.
    pub fn total_shuffled_bytes(&self) -> f64 {
        self.stages.iter().map(|s| s.bytes_shuffled).sum()
    }

    /// The largest per-stage skew share — a quick "is this profile
    /// straggler-bound" signal for reports.
    pub fn max_skew(&self) -> f64 {
        self.stages.iter().map(|s| s.skew).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_without_unknowns() {
        let a = SymCost::constant(300.0);
        let b = SymCost::constant(84.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn figure8_a_dominates_b_for_all_probabilities() {
        // (a): 300·N flat; (b): 84·N flat → (a) always worse.
        let a = SymCost::constant(300.0);
        let b = SymCost::constant(84.0);
        assert!(a.dominates(&b));
    }

    #[test]
    fn figure8_b_and_c_are_incomparable() {
        // (b): 84·N; (c): 150(p1+p2)·N — cheaper when p1+p2 < 0.56,
        // more expensive when both ≈ 1.
        let b = SymCost::constant(84.0);
        let mut c = SymCost::constant(0.0);
        c.add_term("p1", 150.0);
        c.add_term("p2", 150.0);
        assert!(!b.dominates(&c));
        assert!(!c.dominates(&b));
    }

    #[test]
    fn upper_bound_is_all_ones_assignment() {
        let mut c = SymCost::constant(84.0);
        c.add_term("p1", 150.0);
        c.add_term("p2", 16.0);
        assert!((c.upper_bound() - 250.0).abs() < 1e-9);
        let ones: BTreeMap<String, f64> = [("p1".to_string(), 1.0), ("p2".to_string(), 1.0)].into();
        assert!((c.upper_bound() - c.eval(&ones, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn eval_with_probabilities() {
        let mut c = SymCost::constant(0.0);
        c.add_term("p1", 150.0);
        c.add_term("p2", 150.0);
        let probs: BTreeMap<String, f64> =
            [("p1".to_string(), 0.25), ("p2".to_string(), 0.25)].into();
        assert!((c.eval(&probs, 0.0) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn display_groups_terms() {
        let mut c = SymCost::constant(0.0);
        c.add_term("p1", 150.0);
        c.add_term("p2", 150.0);
        assert_eq!(c.display(), "150(p1 + p2)·N");
        assert_eq!(SymCost::constant(84.0).display(), "84·N");
    }

    #[test]
    fn add_and_scale_compose() {
        let mut a = SymCost::constant(10.0);
        a.add_term("p1", 5.0);
        let b = a.scale(2.0);
        assert_eq!(b.base, 20.0);
        assert_eq!(b.terms["p1"], 10.0);
        let mut c = SymCost::constant(1.0);
        c.add(&b);
        assert_eq!(c.base, 21.0);
    }
}
