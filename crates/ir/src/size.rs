//! Static size model for IR types and expressions.
//!
//! The paper's cost model (§5.1) charges per-byte for records emitted and
//! shuffled; Figure 8(d) fixes the constants: String 40 bytes, Boolean 10
//! bytes, a tuple of two Booleans 28 bytes (8 bytes of tuple overhead).
//! This module computes the *static* size of the key/value pairs a
//! transformer emits from type information, which is what the static cost
//! comparison uses before any data is seen.

use seqlang::ty::Type;

use crate::expr::IrExpr;
use crate::lambda::Emit;

/// Serialized size of a value of the given type, in bytes.
pub fn type_size_bytes(ty: &Type) -> u64 {
    match ty {
        Type::Int => 4,
        Type::Double => 8,
        Type::Bool => 10,
        Type::Str => 40,
        Type::Void => 1,
        // Collections are sized per-element at runtime; statically charge
        // a nominal header. Summaries rarely emit whole collections.
        Type::Array(_) | Type::List(_) | Type::Map(..) => 48,
        Type::Struct(_) => 48,
        Type::Tuple(ts) => 8 + ts.iter().map(type_size_bytes).sum::<u64>(),
    }
}

/// Infer the static type of an IR expression given parameter/input types.
/// Returns `None` when the type cannot be determined statically (the cost
/// model then falls back to a conservative default).
pub fn infer_type(expr: &IrExpr, lookup: &dyn Fn(&str) -> Option<Type>) -> Option<Type> {
    use seqlang::ast::BinOp::*;
    match expr {
        IrExpr::ConstInt(_) => Some(Type::Int),
        IrExpr::ConstDouble(_) => Some(Type::Double),
        IrExpr::ConstBool(_) => Some(Type::Bool),
        IrExpr::ConstStr(_) => Some(Type::Str),
        IrExpr::Var(v) => lookup(v),
        IrExpr::Field(base, name) => match infer_type(base, lookup)? {
            Type::Struct(_) => {
                // Struct layouts are resolved by the grammar generator,
                // which substitutes concrete field types; a bare lookup by
                // `var.field` path covers that case.
                lookup(&format!("{base}.{name}"))
            }
            _ => None,
        },
        IrExpr::TupleGet(base, i) => match infer_type(base, lookup)? {
            Type::Tuple(ts) => ts.get(*i).cloned(),
            _ => None,
        },
        IrExpr::Tuple(es) => {
            let ts: Option<Vec<Type>> = es.iter().map(|e| infer_type(e, lookup)).collect();
            Some(Type::Tuple(ts?))
        }
        IrExpr::Bin(op, l, r) => match op {
            Add | Sub | Mul | Div | Mod => {
                let lt = infer_type(l, lookup)?;
                let rt = infer_type(r, lookup)?;
                if lt == Type::Str {
                    Some(Type::Str)
                } else if lt == Type::Double || rt == Type::Double {
                    Some(Type::Double)
                } else {
                    Some(Type::Int)
                }
            }
            Lt | Gt | Le | Ge | Eq | Ne | And | Or => Some(Type::Bool),
            BitAnd | BitOr | BitXor | Shl | Shr => Some(Type::Int),
        },
        IrExpr::Un(op, e) => match op {
            seqlang::ast::UnOp::Not => Some(Type::Bool),
            _ => infer_type(e, lookup),
        },
        IrExpr::Call(name, args) => match name.as_str() {
            "abs" | "min" | "max" => infer_type(args.first()?, lookup),
            "sqrt" | "exp" | "log" | "pow" | "floor" | "ceil" | "int_to_double" => {
                Some(Type::Double)
            }
            "double_to_int" => Some(Type::Int),
            "date_before" | "date_after" => Some(Type::Bool),
            _ => None,
        },
        IrExpr::Method(_, name, _) => match name.as_str() {
            "len" | "size" | "char_at" => Some(Type::Int),
            "contains" | "contains_key" | "starts_with" => Some(Type::Bool),
            "to_lower" => Some(Type::Str),
            "split" => Some(Type::List(Box::new(Type::Str))),
            _ => None,
        },
        IrExpr::If(_, t, e) => {
            let tt = infer_type(t, lookup)?;
            let et = infer_type(e, lookup)?;
            if tt == et {
                Some(tt)
            } else if (tt == Type::Int && et == Type::Double)
                || (tt == Type::Double && et == Type::Int)
            {
                Some(Type::Double)
            } else {
                None
            }
        }
        IrExpr::Agg { op, init, body, .. } => match op {
            crate::expr::AggOp::Or | crate::expr::AggOp::And => Some(Type::Bool),
            _ => {
                // The fold's result is the numeric merge of the init and
                // body types, same widening rule as `If`.
                let it = infer_type(init, lookup)?;
                let bt = infer_type(body, lookup)?;
                if it == bt {
                    Some(it)
                } else if (it == Type::Int && bt == Type::Double)
                    || (it == Type::Double && bt == Type::Int)
                {
                    Some(Type::Double)
                } else {
                    None
                }
            }
        },
    }
}

/// Static size of an emitted key/value pair, with a conservative default
/// of 48 bytes when a side cannot be typed.
pub fn emit_size_bytes(emit: &Emit, lookup: &dyn Fn(&str) -> Option<Type>) -> u64 {
    let k = infer_type(&emit.key, lookup)
        .map(|t| type_size_bytes(&t))
        .unwrap_or(48);
    let v = infer_type(&emit.val, lookup)
        .map(|t| type_size_bytes(&t))
        .unwrap_or(48);
    k + v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambda::Emit;
    use seqlang::ast::BinOp;

    #[test]
    fn figure8_sizes() {
        assert_eq!(type_size_bytes(&Type::Str), 40);
        assert_eq!(type_size_bytes(&Type::Bool), 10);
        assert_eq!(
            type_size_bytes(&Type::Tuple(vec![Type::Bool, Type::Bool])),
            28
        );
    }

    #[test]
    fn infer_comparison_is_bool() {
        let e = IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1"));
        let lookup = |v: &str| match v {
            "w" | "key1" => Some(Type::Str),
            _ => None,
        };
        assert_eq!(infer_type(&e, &lookup), Some(Type::Bool));
    }

    #[test]
    fn stringmatch_solution_a_emit_is_50_bytes() {
        // Figure 8(d) solution (a): λm emits (String key, Bool) = 40 + 10.
        let e = Emit::unconditional(
            IrExpr::var("key1"),
            IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1")),
        );
        let lookup = |v: &str| match v {
            "w" | "key1" => Some(Type::Str),
            _ => None,
        };
        assert_eq!(emit_size_bytes(&e, &lookup), 50);
    }

    #[test]
    fn int_division_stays_int_mixed_goes_double() {
        let lookup = |v: &str| match v {
            "a" => Some(Type::Int),
            "x" => Some(Type::Double),
            _ => None,
        };
        let e1 = IrExpr::bin(BinOp::Div, IrExpr::var("a"), IrExpr::int(2));
        assert_eq!(infer_type(&e1, &lookup), Some(Type::Int));
        let e2 = IrExpr::bin(BinOp::Div, IrExpr::var("x"), IrExpr::var("a"));
        assert_eq!(infer_type(&e2, &lookup), Some(Type::Double));
    }
}
