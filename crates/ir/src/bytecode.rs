//! A flat bytecode VM for IR expressions — the final lowering step of the
//! `Expr → slots → bytecode` pipeline.
//!
//! The slot-resolved closure trees in [`crate::compile`] already removed
//! per-evaluation name resolution, but every IR node still costs one
//! indirect call through a `Box<dyn Fn>`. [`Chunk`] flattens the tree into
//! a compact `Vec<Op>` executed by a value-stack machine: λ-parameter
//! reads are slot-indexed loads, constants live in a deduplicated pool,
//! `If` and the short-circuit boolean operators become relative forward
//! jumps, and the hottest shapes (binary operators whose operands are
//! slot reads or constants, field/tuple projections of a slot) are fused
//! into single super-instructions at compile time. Dispatch is one match
//! per instruction over a dense enum — no pointer chasing, no per-node
//! allocation.
//!
//! The VM is semantically bit-identical to the closure-tree lowering
//! (same error strings, same evaluation order, same short-circuit
//! tolerance for non-boolean operands); [`crate::compile`] keeps the
//! closure trees alive as the differential golden reference, each engine
//! tested against the layer below (tree-walk → closure tree → bytecode).
//!
//! ```
//! use casper_ir::bytecode::Chunk;
//! use casper_ir::expr::IrExpr;
//! use seqlang::ast::BinOp;
//! use seqlang::value::Value;
//! use seqlang::Env;
//!
//! // (v1 + v2) * scale, with v1/v2 as λ slots and `scale` free.
//! let e = IrExpr::bin(
//!     BinOp::Mul,
//!     IrExpr::bin(BinOp::Add, IrExpr::var("v1"), IrExpr::var("v2")),
//!     IrExpr::var("scale"),
//! );
//! let chunk = Chunk::compile(&e, &["v1", "v2"]);
//! let mut state = Env::new();
//! state.set("scale", Value::Int(10));
//! let out = chunk.run(&[Value::Int(3), Value::Int(4)], &state).unwrap();
//! assert_eq!(out, Value::Int(70));
//! ```

use std::cell::Cell;

use seqlang::ast::{BinOp, UnOp};
use seqlang::error::{Error, Result};
use seqlang::interp::{eval_binop, eval_free_function, eval_pure_method};
use seqlang::value::Value;
use seqlang::Env;

use crate::expr::{AggOp, IrExpr};

/// Which lowering backs a compiled summary/λ: the flat bytecode VM (the
/// default execution engine) or the slot-resolved closure trees kept as
/// the differential golden reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Flat `Vec<Op>` chunks run by the value-stack VM.
    #[default]
    Bytecode,
    /// Slot-resolved `Box<dyn Fn>` closure trees (the previous lowering).
    ClosureTree,
}

impl Engine {
    /// Stable label for reports and bench artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Bytecode => "bytecode",
            Engine::ClosureTree => "closure-tree",
        }
    }
}

/// One VM instruction. Operands index the chunk's pools (`u32` keeps the
/// enum at 8 bytes); jump offsets are relative forward distances from the
/// instruction *after* the jump.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Push `consts[i]`.
    Const(u32),
    /// Push λ-slot `locals[i]`.
    Load(u32),
    /// Push the state variable `names[i]`.
    Global(u32),
    /// Pop a base, push its field `names[i]`.
    Field(u32),
    /// Pop a base, push its tuple element `i`.
    TupleGet(u32),
    /// Pop `n` values, push them as one tuple.
    MakeTuple(u32),
    /// Pop rhs then lhs, push `lhs op rhs`.
    Bin(BinOp),
    /// Fused `locals[a] op locals[b]` — no stack traffic.
    BinLL(u32, u32, BinOp),
    /// Fused `locals[a] op consts[c]`.
    BinLC(u32, u32, BinOp),
    /// Pop lhs, push `lhs op locals[b]`.
    BinRL(u32, BinOp),
    /// Pop lhs, push `lhs op consts[c]`.
    BinRC(u32, BinOp),
    /// Fused field projection of λ-slot `a` by `names[n]`.
    LoadField(u32, u32),
    /// Fused tuple projection of λ-slot `a` by index `i`.
    LoadTupleGet(u32, u32),
    /// Pop a value, apply the unary operator.
    Un(UnOp),
    /// Pop `argc` arguments, call free function `names[n]`.
    Call(u32, u32),
    /// Pop `argc` arguments then the receiver, call method `names[n]`.
    Method(u32, u32),
    /// Fail with the unbound-variable error unless state variable
    /// `names[g]` is bound; no stack effect. Emitted before the argument
    /// ops of a [`MethodG`] so the receiver's only observable effect (its
    /// error) still fires in receiver-then-arguments order.
    ///
    /// [`MethodG`]: Op::MethodG
    EnsureGlobal(u32),
    /// Pop `argc` arguments, call method `names[n]` on state variable
    /// `names[g]` *by reference* — the fused form of `Global` + `Method`
    /// that spares the per-record clone of a (possibly huge) free-variable
    /// collection receiver. Always preceded by [`EnsureGlobal`].
    ///
    /// [`EnsureGlobal`]: Op::EnsureGlobal
    MethodG(u32, u32, u32),
    /// Pop `argc` arguments, call method `names[n]` on λ-slot `a` by
    /// reference — the fused `Load` + `Method` (a slot load cannot fault,
    /// so evaluation order is trivially preserved).
    MethodL(u32, u32, u32),
    /// Unconditional relative forward jump.
    Jump(u32),
    /// Pop a condition (must be a bool), jump if false.
    JumpIfFalse(u32),
    /// Short-circuit `&&`: pop lhs; unless it is `true`, push `false` and
    /// jump over the rhs (tolerating non-boolean lhs exactly like the
    /// tree-walking evaluator). Otherwise fall through — the rhs value is
    /// the operator's result.
    AndJump(u32),
    /// Short-circuit `||`: pop lhs; if it is `true`, push `true` and jump
    /// over the rhs. Otherwise fall through.
    OrJump(u32),
    /// Pop the initial accumulator, fold `aggs[i]`'s body chunk over the
    /// elements of its `over` collection, push the folded result.
    Agg(u32),
}

/// One inline aggregate: the fold operator, where its collection lives
/// (λ-slot or state variable — `over_name` is always interned for error
/// messages), and the body chunk compiled over the enclosing λ-parameters
/// plus the element binder as the last slot.
#[derive(Debug, Clone)]
struct AggSub {
    op: AggOp,
    over_slot: Option<u32>,
    over_name: u32,
    body: Chunk,
}

/// A compiled bytecode chunk: flat instruction stream plus deduplicated
/// constant and name pools. `Send + Sync` by construction (no interior
/// state), so chunks slot into the same `Arc`-shared compiled types the
/// closure trees used.
#[derive(Debug, Clone)]
pub struct Chunk {
    ops: Vec<Op>,
    consts: Vec<Value>,
    names: Vec<String>,
    aggs: Vec<AggSub>,
    /// The chunk never needs more than one live value: a single producer
    /// followed by ops that each replace the top of stack. Such chunks —
    /// the common case after fusion — run in a register ([`run_linear`])
    /// with no scratch stack at all.
    ///
    /// [`run_linear`]: Chunk::run_linear
    linear: bool,
}

/// A chunk is linear when its first op pushes exactly one value and every
/// subsequent op pops one and pushes one — the stack depth is pinned at 1,
/// so an accumulator register suffices. Jumps, calls, and two-pop ops
/// disqualify.
fn is_linear(ops: &[Op]) -> bool {
    let Some((first, rest)) = ops.split_first() else {
        return false;
    };
    let head_produces = matches!(
        first,
        Op::Const(_)
            | Op::Load(_)
            | Op::Global(_)
            | Op::BinLL(..)
            | Op::BinLC(..)
            | Op::LoadField(..)
            | Op::LoadTupleGet(..)
    );
    head_produces
        && rest.iter().all(|op| {
            matches!(
                op,
                Op::BinRL(..) | Op::BinRC(..) | Op::Un(_) | Op::Field(_) | Op::TupleGet(_)
            )
        })
}

impl Chunk {
    /// Lower one expression over the λ-parameter namespace `params`:
    /// parameter references become slot loads, everything else a state
    /// lookup — the same shadowing discipline as the closure-tree and
    /// tree-walking evaluators.
    pub fn compile<P: AsRef<str>>(e: &IrExpr, params: &[P]) -> Chunk {
        let mut em = Emitter::default();
        em.emit(e, params);
        let linear = is_linear(&em.ops);
        Chunk {
            ops: em.ops,
            consts: em.consts,
            names: em.names,
            aggs: em.aggs,
            linear,
        }
    }

    /// Number of instructions in the chunk.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Execute against a λ-frame: `locals` are the parameter slots,
    /// `state` the free-variable environment. Uses a thread-local scratch
    /// stack (taken out for the duration of the run, so re-entrant calls
    /// simply allocate a fresh one).
    pub fn run(&self, locals: &[Value], state: &Env) -> Result<Value> {
        if self.linear {
            return self.run_linear(locals, state);
        }
        let mut stack = STACK_POOL.with(|p| p.take()).unwrap_or_default();
        let out = self.exec(&mut stack, locals, state);
        stack.clear();
        STACK_POOL.with(|p| p.set(Some(stack)));
        out
    }

    /// Register-mode execution for [`linear`] chunks: the single live
    /// value stays in `acc`, so there is no scratch-stack traffic and no
    /// pool round-trip. Semantics (including every error message) are
    /// identical to [`exec`]'s.
    ///
    /// [`linear`]: Chunk::linear
    /// [`exec`]: Chunk::exec
    fn run_linear(&self, locals: &[Value], state: &Env) -> Result<Value> {
        let mut acc = match self.ops[0] {
            Op::Const(i) => self.consts[i as usize].clone(),
            Op::Load(i) => locals[i as usize].clone(),
            Op::Global(i) => {
                let name = &self.names[i as usize];
                state
                    .get(name)
                    .cloned()
                    .ok_or_else(|| Error::runtime(format!("IR: unbound variable `{name}`")))?
            }
            Op::BinLL(a, b, op) => {
                vm_binop(op, locals[a as usize].clone(), locals[b as usize].clone())?
            }
            Op::BinLC(a, c, op) => vm_binop(
                op,
                locals[a as usize].clone(),
                self.consts[c as usize].clone(),
            )?,
            Op::LoadField(a, n) => {
                let field = &self.names[n as usize];
                let b = &locals[a as usize];
                b.field(field)
                    .cloned()
                    .ok_or_else(|| Error::runtime(format!("IR: no field `{field}` on {b}")))?
            }
            Op::LoadTupleGet(a, i) => {
                let i = i as usize;
                let b = &locals[a as usize];
                b.tuple_get(i)
                    .cloned()
                    .ok_or_else(|| Error::runtime(format!("IR: tuple index {i} on {b}")))?
            }
            _ => unreachable!("bytecode: non-producer head in linear chunk"),
        };
        for op in &self.ops[1..] {
            acc = match *op {
                Op::BinRL(b, op) => vm_binop(op, acc, locals[b as usize].clone())?,
                Op::BinRC(c, op) => vm_binop(op, acc, self.consts[c as usize].clone())?,
                Op::Un(op) => match (op, acc) {
                    (UnOp::Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                    (UnOp::Neg, Value::Double(x)) => Value::Double(-x),
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (UnOp::BitNot, Value::Int(n)) => Value::Int(!n),
                    (op, v) => return Err(Error::runtime(format!("IR: bad unary {op:?} on {v}"))),
                },
                Op::Field(i) => {
                    let field = &self.names[i as usize];
                    acc.field(field)
                        .cloned()
                        .ok_or_else(|| Error::runtime(format!("IR: no field `{field}` on {acc}")))?
                }
                Op::TupleGet(i) => {
                    let i = i as usize;
                    acc.tuple_get(i)
                        .cloned()
                        .ok_or_else(|| Error::runtime(format!("IR: tuple index {i} on {acc}")))?
                }
                _ => unreachable!("bytecode: non-replacer op in linear chunk"),
            };
        }
        Ok(acc)
    }

    fn exec(&self, stack: &mut Vec<Value>, locals: &[Value], state: &Env) -> Result<Value> {
        let ops = &self.ops[..];
        let mut pc = 0usize;
        while pc < ops.len() {
            match ops[pc] {
                Op::Const(i) => stack.push(self.consts[i as usize].clone()),
                Op::Load(i) => stack.push(locals[i as usize].clone()),
                Op::Global(i) => {
                    let name = &self.names[i as usize];
                    let v = state
                        .get(name)
                        .cloned()
                        .ok_or_else(|| Error::runtime(format!("IR: unbound variable `{name}`")))?;
                    stack.push(v);
                }
                Op::Field(i) => {
                    let field = &self.names[i as usize];
                    let b = stack.pop().expect("bytecode: Field on empty stack");
                    let v = b
                        .field(field)
                        .cloned()
                        .ok_or_else(|| Error::runtime(format!("IR: no field `{field}` on {b}")))?;
                    stack.push(v);
                }
                Op::TupleGet(i) => {
                    let i = i as usize;
                    let b = stack.pop().expect("bytecode: TupleGet on empty stack");
                    let v = b
                        .tuple_get(i)
                        .cloned()
                        .ok_or_else(|| Error::runtime(format!("IR: tuple index {i} on {b}")))?;
                    stack.push(v);
                }
                Op::MakeTuple(n) => {
                    let vals = stack.split_off(stack.len() - n as usize);
                    stack.push(Value::Tuple(vals));
                }
                Op::Bin(op) => {
                    let r = stack.pop().expect("bytecode: Bin rhs");
                    let l = stack.pop().expect("bytecode: Bin lhs");
                    stack.push(vm_binop(op, l, r)?);
                }
                Op::BinLL(a, b, op) => {
                    let l = locals[a as usize].clone();
                    let r = locals[b as usize].clone();
                    stack.push(vm_binop(op, l, r)?);
                }
                Op::BinLC(a, c, op) => {
                    let l = locals[a as usize].clone();
                    let r = self.consts[c as usize].clone();
                    stack.push(vm_binop(op, l, r)?);
                }
                Op::BinRL(b, op) => {
                    let l = stack.pop().expect("bytecode: BinRL lhs");
                    let r = locals[b as usize].clone();
                    stack.push(vm_binop(op, l, r)?);
                }
                Op::BinRC(c, op) => {
                    let l = stack.pop().expect("bytecode: BinRC lhs");
                    let r = self.consts[c as usize].clone();
                    stack.push(vm_binop(op, l, r)?);
                }
                Op::LoadField(a, n) => {
                    let field = &self.names[n as usize];
                    let b = &locals[a as usize];
                    let v = b
                        .field(field)
                        .cloned()
                        .ok_or_else(|| Error::runtime(format!("IR: no field `{field}` on {b}")))?;
                    stack.push(v);
                }
                Op::LoadTupleGet(a, i) => {
                    let i = i as usize;
                    let b = &locals[a as usize];
                    let v = b
                        .tuple_get(i)
                        .cloned()
                        .ok_or_else(|| Error::runtime(format!("IR: tuple index {i} on {b}")))?;
                    stack.push(v);
                }
                Op::Un(op) => {
                    let v = stack.pop().expect("bytecode: Un operand");
                    let out = match (op, v) {
                        (UnOp::Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                        (UnOp::Neg, Value::Double(x)) => Value::Double(-x),
                        (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                        (UnOp::BitNot, Value::Int(n)) => Value::Int(!n),
                        (op, v) => {
                            return Err(Error::runtime(format!("IR: bad unary {op:?} on {v}")))
                        }
                    };
                    stack.push(out);
                }
                Op::Call(n, argc) => {
                    let vals = stack.split_off(stack.len() - argc as usize);
                    stack.push(eval_free_function(&self.names[n as usize], &vals)?);
                }
                Op::Method(n, argc) => {
                    let vals = stack.split_off(stack.len() - argc as usize);
                    let b = stack.pop().expect("bytecode: Method receiver");
                    stack.push(eval_pure_method(&b, &self.names[n as usize], &vals)?);
                }
                Op::EnsureGlobal(g) => {
                    let name = &self.names[g as usize];
                    if state.get(name).is_none() {
                        return Err(Error::runtime(format!("IR: unbound variable `{name}`")));
                    }
                }
                Op::MethodG(g, n, argc) => {
                    let vals = stack.split_off(stack.len() - argc as usize);
                    let name = &self.names[g as usize];
                    let b = state
                        .get(name)
                        .ok_or_else(|| Error::runtime(format!("IR: unbound variable `{name}`")))?;
                    stack.push(eval_pure_method(b, &self.names[n as usize], &vals)?);
                }
                Op::MethodL(a, n, argc) => {
                    let vals = stack.split_off(stack.len() - argc as usize);
                    let b = &locals[a as usize];
                    stack.push(eval_pure_method(b, &self.names[n as usize], &vals)?);
                }
                Op::Jump(d) => {
                    pc += 1 + d as usize;
                    continue;
                }
                Op::JumpIfFalse(d) => {
                    let cond = stack
                        .pop()
                        .expect("bytecode: JumpIfFalse condition")
                        .as_bool()
                        .ok_or_else(|| Error::runtime("IR: non-bool condition"))?;
                    if !cond {
                        pc += 1 + d as usize;
                        continue;
                    }
                }
                Op::AndJump(d) => {
                    let l = stack.pop().expect("bytecode: AndJump lhs");
                    if l.as_bool() != Some(true) {
                        stack.push(Value::Bool(false));
                        pc += 1 + d as usize;
                        continue;
                    }
                }
                Op::OrJump(d) => {
                    let l = stack.pop().expect("bytecode: OrJump lhs");
                    if l.as_bool() == Some(true) {
                        stack.push(Value::Bool(true));
                        pc += 1 + d as usize;
                        continue;
                    }
                }
                Op::Agg(i) => {
                    let sub = &self.aggs[i as usize];
                    let mut acc = stack.pop().expect("bytecode: Agg init");
                    let name = &self.names[sub.over_name as usize];
                    let coll = match sub.over_slot {
                        Some(s) => locals[s as usize].clone(),
                        None => state.get(name).cloned().ok_or_else(|| {
                            Error::runtime(format!("IR: unbound variable `{name}`"))
                        })?,
                    };
                    let elems = coll
                        .elements()
                        .ok_or_else(|| Error::runtime(format!("`{name}` is not a collection")))?;
                    let mut locals2 = locals.to_vec();
                    locals2.push(Value::Int(0));
                    for e in elems {
                        *locals2.last_mut().expect("element slot") = e.clone();
                        let v = sub.body.run(&locals2, state)?;
                        acc = sub.op.combine(acc, v)?;
                    }
                    stack.push(acc);
                }
            }
            pc += 1;
        }
        Ok(stack.pop().expect("bytecode: chunk left no result"))
    }
}

/// Bytecode emitter: walks the expression tree once, interning constants
/// and names, patching forward jumps, and fusing push+consume pairs into
/// super-instructions where no jump target intervenes.
#[derive(Default)]
struct Emitter {
    ops: Vec<Op>,
    consts: Vec<Value>,
    names: Vec<String>,
    aggs: Vec<AggSub>,
    /// No fusion may reach at or before this instruction index: it marks
    /// the most recent jump target, and merging a jump target into an
    /// earlier instruction would desynchronize the patched offsets.
    fuse_barrier: usize,
}

impl Emitter {
    fn const_idx(&mut self, v: Value) -> u32 {
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn name_idx(&mut self, n: &str) -> u32 {
        if let Some(i) = self.names.iter().position(|x| x == n) {
            return i as u32;
        }
        self.names.push(n.to_string());
        (self.names.len() - 1) as u32
    }

    /// Emit a jump with a placeholder offset; returns its index for
    /// [`Emitter::patch`].
    fn emit_jump(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Point the jump at `at` to the *next* instruction to be emitted.
    fn patch(&mut self, at: usize) {
        let off = (self.ops.len() - at - 1) as u32;
        match &mut self.ops[at] {
            Op::Jump(d) | Op::JumpIfFalse(d) | Op::AndJump(d) | Op::OrJump(d) => *d = off,
            other => unreachable!("patching non-jump {other:?}"),
        }
        // The instruction emitted next is a jump target: nothing may fuse
        // across it.
        self.fuse_barrier = self.ops.len();
    }

    /// The last instruction, if it is fusable (past the jump barrier).
    fn fusable_tail(&self) -> Option<Op> {
        if self.ops.len() > self.fuse_barrier {
            self.ops.last().copied()
        } else {
            None
        }
    }

    /// The instruction before the last, if both are past the barrier.
    fn fusable_prev(&self) -> Option<Op> {
        if self.ops.len() >= 2 && self.ops.len() - 1 > self.fuse_barrier {
            Some(self.ops[self.ops.len() - 2])
        } else {
            None
        }
    }

    /// Emit a non-short-circuit binary operator, fusing slot/const
    /// operand pushes into a single super-instruction when possible.
    /// Operand evaluation order (lhs first) and fault behaviour are
    /// unchanged because the fused pushes (`Load`/`Const`) cannot fault.
    fn emit_bin(&mut self, op: BinOp) {
        match (self.fusable_prev(), self.fusable_tail()) {
            (Some(Op::Load(a)), Some(Op::Load(b))) => {
                self.ops.truncate(self.ops.len() - 2);
                self.ops.push(Op::BinLL(a, b, op));
            }
            (Some(Op::Load(a)), Some(Op::Const(c))) => {
                self.ops.truncate(self.ops.len() - 2);
                self.ops.push(Op::BinLC(a, c, op));
            }
            (_, Some(Op::Load(b))) => {
                self.ops.pop();
                self.ops.push(Op::BinRL(b, op));
            }
            (_, Some(Op::Const(c))) => {
                self.ops.pop();
                self.ops.push(Op::BinRC(c, op));
            }
            _ => self.ops.push(Op::Bin(op)),
        }
    }

    fn emit<P: AsRef<str>>(&mut self, e: &IrExpr, params: &[P]) {
        match e {
            IrExpr::ConstInt(n) => {
                let i = self.const_idx(Value::Int(*n));
                self.ops.push(Op::Const(i));
            }
            IrExpr::ConstDouble(x) => {
                let i = self.const_idx(Value::Double(x.0));
                self.ops.push(Op::Const(i));
            }
            IrExpr::ConstBool(b) => {
                let i = self.const_idx(Value::Bool(*b));
                self.ops.push(Op::Const(i));
            }
            IrExpr::ConstStr(s) => {
                let i = self.const_idx(Value::str(s.as_str()));
                self.ops.push(Op::Const(i));
            }
            IrExpr::Var(name) => {
                // `rposition`: the LAST binding of a name wins, matching
                // the tree-walking evaluator's env-overwrite shadowing.
                if let Some(slot) = params.iter().rposition(|p| p.as_ref() == name) {
                    self.ops.push(Op::Load(slot as u32));
                } else {
                    let i = self.name_idx(name);
                    self.ops.push(Op::Global(i));
                }
            }
            IrExpr::Field(base, field) => {
                self.emit(base, params);
                let i = self.name_idx(field);
                if let Some(Op::Load(a)) = self.fusable_tail() {
                    self.ops.pop();
                    self.ops.push(Op::LoadField(a, i));
                } else {
                    self.ops.push(Op::Field(i));
                }
            }
            IrExpr::TupleGet(base, idx) => {
                self.emit(base, params);
                if let Some(Op::Load(a)) = self.fusable_tail() {
                    self.ops.pop();
                    self.ops.push(Op::LoadTupleGet(a, *idx as u32));
                } else {
                    self.ops.push(Op::TupleGet(*idx as u32));
                }
            }
            IrExpr::Tuple(es) => {
                for x in es {
                    self.emit(x, params);
                }
                self.ops.push(Op::MakeTuple(es.len() as u32));
            }
            IrExpr::Bin(op, l, r) => match op {
                BinOp::And => {
                    self.emit(l, params);
                    let j = self.emit_jump(Op::AndJump(0));
                    self.emit(r, params);
                    self.patch(j);
                }
                BinOp::Or => {
                    self.emit(l, params);
                    let j = self.emit_jump(Op::OrJump(0));
                    self.emit(r, params);
                    self.patch(j);
                }
                op => {
                    self.emit(l, params);
                    self.emit(r, params);
                    self.emit_bin(*op);
                }
            },
            IrExpr::Un(op, inner) => {
                self.emit(inner, params);
                self.ops.push(Op::Un(*op));
            }
            IrExpr::Call(name, args) => {
                for a in args {
                    self.emit(a, params);
                }
                let n = self.name_idx(name);
                self.ops.push(Op::Call(n, args.len() as u32));
            }
            IrExpr::Method(base, name, args) => {
                // Variable receivers are called by reference: a λ-slot
                // load cannot fault, and a state lookup's only observable
                // effect — the unbound error — is re-ordered ahead of the
                // arguments by an explicit `EnsureGlobal`, exactly where
                // the tree-walking evaluator would raise it.
                if let IrExpr::Var(v) = base.as_ref() {
                    if let Some(slot) = params.iter().rposition(|p| p.as_ref() == v) {
                        for a in args {
                            self.emit(a, params);
                        }
                        let n = self.name_idx(name);
                        self.ops
                            .push(Op::MethodL(slot as u32, n, args.len() as u32));
                    } else {
                        let g = self.name_idx(v);
                        self.ops.push(Op::EnsureGlobal(g));
                        for a in args {
                            self.emit(a, params);
                        }
                        let n = self.name_idx(name);
                        self.ops.push(Op::MethodG(g, n, args.len() as u32));
                    }
                    return;
                }
                self.emit(base, params);
                for a in args {
                    self.emit(a, params);
                }
                let n = self.name_idx(name);
                self.ops.push(Op::Method(n, args.len() as u32));
            }
            IrExpr::If(c, t, e2) => {
                self.emit(c, params);
                let jf = self.emit_jump(Op::JumpIfFalse(0));
                self.emit(t, params);
                let j = self.emit_jump(Op::Jump(0));
                self.patch(jf);
                self.emit(e2, params);
                self.patch(j);
            }
            IrExpr::Agg {
                op,
                init,
                over,
                param,
                body,
            } => {
                // Init first (the tree walk evaluates it before resolving
                // the collection), then one Agg super-instruction holding
                // the body as a nested chunk over params ++ [param].
                self.emit(init, params);
                let mut body_params: Vec<String> =
                    params.iter().map(|p| p.as_ref().to_string()).collect();
                body_params.push(param.clone());
                let body = Chunk::compile(body, &body_params);
                let over_slot = params
                    .iter()
                    .rposition(|p| p.as_ref() == over.as_str())
                    .map(|s| s as u32);
                let over_name = self.name_idx(over);
                self.aggs.push(AggSub {
                    op: *op,
                    over_slot,
                    over_name,
                    body,
                });
                self.ops.push(Op::Agg((self.aggs.len() - 1) as u32));
            }
        }
    }
}

thread_local! {
    /// Scratch value stack reused across VM runs on this thread.
    static STACK_POOL: Cell<Option<Vec<Value>>> = const { Cell::new(None) };
}

/// Binary dispatch with inline fast paths for the Int/Double shapes that
/// dominate synthesized expressions; every path reproduces
/// [`eval_binop`]'s results bit-for-bit (including `wrapping_*` integer
/// semantics and the `f64`-widening comparisons) and everything else
/// falls through to the shared interpreter helper.
#[inline]
fn vm_binop(op: BinOp, l: Value, r: Value) -> Result<Value> {
    match (op, &l, &r) {
        (BinOp::Add, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
        (BinOp::Sub, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_sub(*b))),
        (BinOp::Mul, Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_mul(*b))),
        (BinOp::Add, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a + b)),
        (BinOp::Sub, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a - b)),
        (BinOp::Mul, Value::Double(a), Value::Double(b)) => Ok(Value::Double(a * b)),
        (BinOp::Lt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool((*a as f64) < (*b as f64))),
        (BinOp::Gt, Value::Int(a), Value::Int(b)) => Ok(Value::Bool((*a as f64) > (*b as f64))),
        (BinOp::Le, Value::Int(a), Value::Int(b)) => Ok(Value::Bool((*a as f64) <= (*b as f64))),
        (BinOp::Ge, Value::Int(a), Value::Int(b)) => Ok(Value::Bool((*a as f64) >= (*b as f64))),
        _ => eval_binop(op, l, r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree-walk (via a state env binding the "params") vs VM, exact
    /// agreement including error outcomes.
    fn assert_vm_agrees(e: &IrExpr, params: &[&str], locals: &[Value], state: &Env) {
        let mut env = state.clone();
        for (p, v) in params.iter().zip(locals) {
            env.set(*p, v.clone());
        }
        let chunk = Chunk::compile(e, params);
        match (e.eval(&env), chunk.run(locals, state)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "VM diverges on {e}"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "error identity on {e}"),
            (a, b) => panic!("agreement broken on {e}: tree-walk {a:?} vs VM {b:?}"),
        }
    }

    #[test]
    fn arithmetic_and_comparisons_match_tree_walk() {
        let e = IrExpr::bin(
            BinOp::Mul,
            IrExpr::bin(BinOp::Add, IrExpr::var("v1"), IrExpr::var("v2")),
            IrExpr::bin(BinOp::Sub, IrExpr::var("v1"), IrExpr::int(3)),
        );
        assert_vm_agrees(
            &e,
            &["v1", "v2"],
            &[Value::Int(7), Value::Int(-2)],
            &Env::new(),
        );
        let cmp = IrExpr::bin(BinOp::Lt, IrExpr::var("v1"), IrExpr::var("v2"));
        assert_vm_agrees(
            &cmp,
            &["v1", "v2"],
            &[Value::Int(i64::MAX), Value::Int(i64::MAX - 1)],
            &Env::new(),
        );
    }

    #[test]
    fn globals_fields_tuples_and_methods_match() {
        let mut st = Env::new();
        st.set("scale", Value::Int(4));
        st.set(
            "arr",
            Value::Array(vec![Value::Int(10), Value::Int(20), Value::Int(30)]),
        );
        let e = IrExpr::bin(
            BinOp::Add,
            IrExpr::Method(
                Box::new(IrExpr::var("arr")),
                "get".into(),
                vec![IrExpr::var("i")],
            ),
            IrExpr::bin(
                BinOp::Mul,
                IrExpr::tget(IrExpr::var("pair"), 1),
                IrExpr::var("scale"),
            ),
        );
        assert_vm_agrees(
            &e,
            &["i", "pair"],
            &[
                Value::Int(2),
                Value::Tuple(vec![Value::Int(0), Value::Int(5)]),
            ],
            &st,
        );
        // Missing global, bad field, bad tuple index: identical errors.
        let unbound = IrExpr::var("nope");
        assert_vm_agrees(&unbound, &[], &[], &st);
        let bad_field = IrExpr::Field(Box::new(IrExpr::var("scale")), "x".into());
        assert_vm_agrees(&bad_field, &[], &[], &st);
        let bad_idx = IrExpr::tget(IrExpr::var("scale"), 3);
        assert_vm_agrees(&bad_idx, &[], &[], &st);
    }

    #[test]
    fn short_circuit_and_conditionals_match() {
        let faulting = IrExpr::bin(
            BinOp::Gt,
            IrExpr::bin(BinOp::Div, IrExpr::int(1), IrExpr::int(0)),
            IrExpr::int(0),
        );
        let and = IrExpr::bin(BinOp::And, IrExpr::ConstBool(false), faulting.clone());
        assert_vm_agrees(&and, &[], &[], &Env::new());
        let or = IrExpr::bin(BinOp::Or, IrExpr::ConstBool(true), faulting.clone());
        assert_vm_agrees(&or, &[], &[], &Env::new());
        // Non-bool lhs tolerated as "not true", exactly like the tree walk.
        let odd_and = IrExpr::bin(BinOp::And, IrExpr::int(1), IrExpr::ConstBool(true));
        assert_vm_agrees(&odd_and, &[], &[], &Env::new());
        // If takes only the selected branch.
        let ite = IrExpr::ite(
            IrExpr::bin(BinOp::Gt, IrExpr::var("v1"), IrExpr::int(0)),
            IrExpr::var("v1"),
            faulting,
        );
        assert_vm_agrees(&ite, &["v1"], &[Value::Int(9)], &Env::new());
        let non_bool_cond = IrExpr::ite(IrExpr::int(1), IrExpr::int(2), IrExpr::int(3));
        assert_vm_agrees(&non_bool_cond, &[], &[], &Env::new());
    }

    /// A fusable pair straddling a jump target must NOT fuse: the `else`
    /// branch here starts with a `Load` that is a jump target while the
    /// instruction before it belongs to the `then` branch.
    #[test]
    fn fusion_never_crosses_jump_targets() {
        let ite = IrExpr::ite(
            IrExpr::var("c"),
            IrExpr::var("v1"),
            IrExpr::bin(BinOp::Add, IrExpr::var("v1"), IrExpr::var("v2")),
        );
        for (c, want) in [
            (Value::Bool(true), Value::Int(10)),
            (Value::Bool(false), Value::Int(13)),
        ] {
            assert_vm_agrees(
                &ite,
                &["c", "v1", "v2"],
                &[c.clone(), Value::Int(10), Value::Int(3)],
                &Env::new(),
            );
            let chunk = Chunk::compile(&ite, &["c", "v1", "v2"]);
            let got = chunk
                .run(&[c, Value::Int(10), Value::Int(3)], &Env::new())
                .unwrap();
            assert_eq!(got, want);
        }
        // Same shape as an operand of an outer fusable binop.
        let outer = IrExpr::bin(BinOp::Mul, ite, IrExpr::var("v2"));
        assert_vm_agrees(
            &outer,
            &["c", "v1", "v2"],
            &[Value::Bool(false), Value::Int(10), Value::Int(3)],
            &Env::new(),
        );
    }

    #[test]
    fn fusion_shrinks_deep_chains() {
        // v1*v1 + v2*v2 — every binop should fuse into a super-instruction.
        let e = IrExpr::bin(
            BinOp::Add,
            IrExpr::bin(BinOp::Mul, IrExpr::var("v1"), IrExpr::var("v1")),
            IrExpr::bin(BinOp::Mul, IrExpr::var("v2"), IrExpr::var("v2")),
        );
        let chunk = Chunk::compile(&e, &["v1", "v2"]);
        // BinLL, BinLL, Bin — three instructions for seven tree nodes.
        assert_eq!(chunk.op_count(), 3);
        assert_eq!(
            chunk
                .run(&[Value::Int(3), Value::Int(4)], &Env::new())
                .unwrap(),
            Value::Int(25)
        );
    }

    #[test]
    fn fused_method_receivers_keep_error_order() {
        // `missing.get(1 / 0)` — the unbound-receiver error must win over
        // the argument fault, exactly as the tree-walking evaluator
        // raises it (receiver first). The fused MethodG path re-orders
        // argument evaluation, so EnsureGlobal carries the check.
        let e = IrExpr::Method(
            Box::new(IrExpr::var("missing")),
            "get".into(),
            vec![IrExpr::bin(BinOp::Div, IrExpr::int(1), IrExpr::int(0))],
        );
        assert_vm_agrees(&e, &[] as &[&str], &[], &Env::new());

        // Bound receiver, faulting argument: the argument error surfaces.
        let mut env = Env::new();
        env.set("xs", Value::Array(vec![Value::Int(9)]));
        let e2 = IrExpr::Method(
            Box::new(IrExpr::var("xs")),
            "get".into(),
            vec![IrExpr::bin(BinOp::Div, IrExpr::int(1), IrExpr::int(0))],
        );
        assert_vm_agrees(&e2, &[] as &[&str], &[], &env);

        // Slot receiver: same result as the tree walk, by reference.
        let e3 = IrExpr::Method(
            Box::new(IrExpr::var("v1")),
            "get".into(),
            vec![IrExpr::int(1)],
        );
        let chunk = Chunk::compile(&e3, &["v1"]);
        assert_eq!(
            chunk
                .run(
                    &[Value::Array(vec![Value::Int(4), Value::Int(7)])],
                    &Env::new()
                )
                .unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn linear_chunks_take_the_register_path() {
        // A left-leaning fused chain keeps stack depth at 1: register mode.
        let mut e = IrExpr::var("v1");
        for i in 0..16 {
            let term = if i % 2 == 0 {
                IrExpr::var("v2")
            } else {
                IrExpr::int(3)
            };
            let op = if i % 2 == 0 { BinOp::Add } else { BinOp::Mul };
            e = IrExpr::bin(op, e, term);
        }
        let chunk = Chunk::compile(&e, &["v1", "v2"]);
        assert!(chunk.linear);
        assert_vm_agrees(
            &e,
            &["v1", "v2"],
            &[Value::Int(5), Value::Int(7)],
            &Env::new(),
        );

        // Anything with a jump (or a two-pop combine) needs the stack.
        let branchy = IrExpr::If(
            Box::new(IrExpr::bin(BinOp::Lt, IrExpr::var("v1"), IrExpr::var("v2"))),
            Box::new(IrExpr::var("v1")),
            Box::new(IrExpr::var("v2")),
        );
        assert!(!Chunk::compile(&branchy, &["v1", "v2"]).linear);
        let two_pop = IrExpr::bin(
            BinOp::Add,
            IrExpr::bin(BinOp::Mul, IrExpr::var("v1"), IrExpr::var("v1")),
            IrExpr::bin(BinOp::Mul, IrExpr::var("v2"), IrExpr::var("v2")),
        );
        assert!(!Chunk::compile(&two_pop, &["v1", "v2"]).linear);
    }

    #[test]
    fn constants_and_names_are_deduplicated() {
        let e = IrExpr::bin(
            BinOp::Add,
            IrExpr::bin(BinOp::Add, IrExpr::var("x"), IrExpr::int(7)),
            IrExpr::bin(BinOp::Add, IrExpr::var("x"), IrExpr::int(7)),
        );
        let chunk = Chunk::compile(&e, &[] as &[&str]);
        assert_eq!(chunk.consts.len(), 1);
        assert_eq!(chunk.names.len(), 1);
    }

    #[test]
    fn inline_aggregates_match_tree_walk() {
        let gs = Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        // Global collection: agg_add(0, a in gs, a * x).
        let e = IrExpr::Agg {
            op: AggOp::Add,
            init: Box::new(IrExpr::int(0)),
            over: "gs".into(),
            param: "a".into(),
            body: Box::new(IrExpr::bin(BinOp::Mul, IrExpr::var("a"), IrExpr::var("x"))),
        };
        let mut st = Env::new();
        st.set("gs", gs.clone());
        assert_vm_agrees(&e, &["x"], &[Value::Int(2)], &st);
        // Slot collection, and the binder shadowing a same-named outer
        // parameter — the last binding must win in every engine.
        let shadow = IrExpr::Agg {
            op: AggOp::Max,
            init: Box::new(IrExpr::var("v1")),
            over: "v2".into(),
            param: "v1".into(),
            body: Box::new(IrExpr::var("v1")),
        };
        assert_vm_agrees(&shadow, &["v1", "v2"], &[Value::Int(-9), gs], &Env::new());
        // Error identity: unbound collection, non-collection, faulting body.
        assert_vm_agrees(&e, &["x"], &[Value::Int(2)], &Env::new());
        let mut bad = Env::new();
        bad.set("gs", Value::Int(3));
        assert_vm_agrees(&e, &["x"], &[Value::Int(2)], &bad);
        let faulting = IrExpr::Agg {
            op: AggOp::Add,
            init: Box::new(IrExpr::int(0)),
            over: "gs".into(),
            param: "a".into(),
            body: Box::new(IrExpr::bin(BinOp::Div, IrExpr::var("a"), IrExpr::int(0))),
        };
        assert_vm_agrees(&faulting, &[], &[], &st);
    }

    #[test]
    fn calls_and_string_constants_match() {
        let mut st = Env::new();
        st.set("x", Value::Double(-2.5));
        let e = IrExpr::Call("abs".into(), vec![IrExpr::var("x")]);
        assert_vm_agrees(&e, &[], &[], &st);
        let cat = IrExpr::bin(
            BinOp::Add,
            IrExpr::ConstStr("a".into()),
            IrExpr::ConstStr("b".into()),
        );
        assert_vm_agrees(&cat, &[], &[], &Env::new());
    }
}
