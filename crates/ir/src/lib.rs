//! `casper-ir` — the high-level intermediate representation for program
//! summaries (paper §3.1, Figure 3, Appendix B).
//!
//! A *program summary* is a postcondition describing how each output
//! variable of a sequential code fragment is computed as a pipeline of
//! `map`, `reduce` and `join` operators over the fragment's input data.
//! The IR is:
//!
//! * **succinct** — a handful of operators, so the synthesizer's search
//!   space stays tractable, and
//! * **executable** — [`eval`] gives the IR a deterministic semantics over
//!   [`seqlang::Value`]s, which is what the CEGIS loop's bounded model
//!   checking and the full verifier both run.
//!
//! The [`fold`] module implements the Fold-IR of prior work, re-hosted on
//! this infrastructure exactly as §7.5 describes.

pub mod bytecode;
pub mod compile;
pub mod eval;
pub mod expr;
pub mod fold;
pub mod lambda;
pub mod mr;
pub mod pretty;
pub mod size;

pub use bytecode::{Chunk, Engine};
pub use compile::{CompiledMrExpr, CompiledSummary};
pub use eval::{eval_summary, EvalCtx};
pub use expr::IrExpr;
pub use lambda::{Emit, MapLambda, ReduceLambda};
pub use mr::{DataShape, DataSource, MrExpr, OutputBinding, OutputKind, ProgramSummary};
