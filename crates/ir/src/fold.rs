//! Fold-IR extension (§7.5).
//!
//! The paper demonstrates Casper's extensibility by hosting the Fold-IR of
//! Emani et al. \[22\] inside the system: a `fold` construct with an initial
//! accumulator and a binary combine function, enough to express every
//! Ariths benchmark. We reproduce that extension here: `FoldSummary` is an
//! alternative summary form with its own evaluator, reusing [`IrExpr`] for
//! the fold body.

use seqlang::error::{Error, Result};
use seqlang::value::Value;
use seqlang::Env;

use crate::expr::IrExpr;
use crate::mr::{DataShape, DataSource};

/// `v = fold(data, init, λ(acc, x) -> expr)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FoldSummary {
    pub var: String,
    pub data: DataSource,
    /// Initial accumulator expression (evaluated against the pre-state).
    pub init: IrExpr,
    /// Accumulator parameter name (conventionally `acc`).
    pub acc_param: String,
    /// Element parameter name(s), per the data shape.
    pub elem_params: Vec<String>,
    pub body: IrExpr,
}

impl FoldSummary {
    pub fn new(
        var: impl Into<String>,
        data: DataSource,
        init: IrExpr,
        body: IrExpr,
    ) -> FoldSummary {
        let elem_params = match data.shape {
            DataShape::Flat => vec!["x".to_string()],
            DataShape::Indexed => vec!["i".to_string(), "x".to_string()],
            DataShape::Indexed2D => {
                vec!["i".to_string(), "j".to_string(), "x".to_string()]
            }
        };
        FoldSummary {
            var: var.into(),
            data,
            init,
            acc_param: "acc".to_string(),
            elem_params,
            body,
        }
    }

    /// Evaluate the fold against a concrete program state.
    pub fn eval(&self, state: &Env) -> Result<Value> {
        let coll = state
            .get(&self.data.var)
            .ok_or_else(|| Error::runtime(format!("no input `{}`", self.data.var)))?;
        let elems = coll
            .elements()
            .ok_or_else(|| Error::runtime(format!("`{}` is not a collection", self.data.var)))?
            .to_vec();
        let mut env = state.clone();
        let mut acc = self.init.eval(&env)?;
        match self.data.shape {
            DataShape::Flat => {
                for x in elems {
                    env.set(self.acc_param.clone(), acc);
                    env.set(self.elem_params[0].clone(), x);
                    acc = self.body.eval(&env)?;
                }
            }
            DataShape::Indexed => {
                for (i, x) in elems.into_iter().enumerate() {
                    env.set(self.acc_param.clone(), acc);
                    env.set(self.elem_params[0].clone(), Value::Int(i as i64));
                    env.set(self.elem_params[1].clone(), x);
                    acc = self.body.eval(&env)?;
                }
            }
            DataShape::Indexed2D => {
                for (i, row) in elems.into_iter().enumerate() {
                    let inner = row
                        .elements()
                        .ok_or_else(|| Error::runtime("fold: data is not 2-D"))?
                        .to_vec();
                    for (j, x) in inner.into_iter().enumerate() {
                        env.set(self.acc_param.clone(), acc);
                        env.set(self.elem_params[0].clone(), Value::Int(i as i64));
                        env.set(self.elem_params[1].clone(), Value::Int(j as i64));
                        env.set(self.elem_params[2].clone(), x);
                        acc = self.body.eval(&env)?;
                    }
                }
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqlang::ast::BinOp;
    use seqlang::ty::Type;

    fn state(pairs: &[(&str, Value)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn fold_sum() {
        let f = FoldSummary::new(
            "s",
            DataSource::flat("xs", Type::Int),
            IrExpr::int(0),
            IrExpr::bin(BinOp::Add, IrExpr::var("acc"), IrExpr::var("x")),
        );
        let st = state(&[(
            "xs",
            Value::List(vec![Value::Int(5), Value::Int(6), Value::Int(7)]),
        )]);
        assert_eq!(f.eval(&st).unwrap(), Value::Int(18));
    }

    #[test]
    fn fold_min_with_library_call() {
        let f = FoldSummary::new(
            "m",
            DataSource::flat("xs", Type::Int),
            IrExpr::int(i64::MAX),
            IrExpr::Call("min".into(), vec![IrExpr::var("acc"), IrExpr::var("x")]),
        );
        let st = state(&[(
            "xs",
            Value::List(vec![Value::Int(9), Value::Int(-3), Value::Int(4)]),
        )]);
        assert_eq!(f.eval(&st).unwrap(), Value::Int(-3));
    }

    #[test]
    fn fold_on_empty_returns_init() {
        let f = FoldSummary::new(
            "s",
            DataSource::flat("xs", Type::Int),
            IrExpr::int(42),
            IrExpr::bin(BinOp::Add, IrExpr::var("acc"), IrExpr::var("x")),
        );
        let st = state(&[("xs", Value::List(vec![]))]);
        assert_eq!(f.eval(&st).unwrap(), Value::Int(42));
    }

    #[test]
    fn fold_indexed_weighted_sum() {
        // acc + i * x
        let f = FoldSummary::new(
            "s",
            DataSource::indexed("xs", Type::Int),
            IrExpr::int(0),
            IrExpr::bin(
                BinOp::Add,
                IrExpr::var("acc"),
                IrExpr::bin(BinOp::Mul, IrExpr::var("i"), IrExpr::var("x")),
            ),
        );
        let st = state(&[(
            "xs",
            Value::List(vec![Value::Int(10), Value::Int(20), Value::Int(30)]),
        )]);
        // 0*10 + 1*20 + 2*30 = 80
        assert_eq!(f.eval(&st).unwrap(), Value::Int(80));
    }
}
