//! IR expressions — the bodies of synthesized transformer functions.

use std::fmt;

use seqlang::ast::{BinOp, UnOp};
use seqlang::error::{Error, Result};
use seqlang::interp::{eval_binop, eval_free_function, eval_pure_method};
use seqlang::value::Value;
use seqlang::Env;

/// An expression in the summary IR (the `Expr` production of Figure 3).
///
/// Variables refer either to transformer-function parameters (bound per
/// record during evaluation) or to *free* input variables of the code
/// fragment (bound from the program state, e.g. `cols` in the row-wise
/// mean benchmark).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IrExpr {
    ConstInt(i64),
    ConstDouble(OrderedF64),
    ConstBool(bool),
    ConstStr(String),
    Var(String),
    /// Struct field projection, e.g. `l.l_discount`.
    Field(Box<IrExpr>, String),
    /// Tuple component access, `t.0` / `t.1`.
    TupleGet(Box<IrExpr>, usize),
    /// Tuple construction `(e1, e2, ...)`.
    Tuple(Vec<IrExpr>),
    Bin(BinOp, Box<IrExpr>, Box<IrExpr>),
    Un(UnOp, Box<IrExpr>),
    /// Modelled library call (`abs`, `min`, `max`, `sqrt`, ...).
    Call(String, Vec<IrExpr>),
    /// Modelled method call on the receiver (`split`, `contains`, ...).
    Method(Box<IrExpr>, String, Vec<IrExpr>),
    /// Conditional expression.
    If(Box<IrExpr>, Box<IrExpr>, Box<IrExpr>),
    /// Inline aggregate: fold `body` over the elements of the collection
    /// named `over`, starting from `init` and combining with `op`;
    /// `param` binds the current element inside `body`. This is the
    /// nested-aggregate production (per-record inner reductions such as
    /// k-means' closest-centroid scan or a histogram CDF rank).
    Agg {
        op: AggOp,
        init: Box<IrExpr>,
        over: String,
        param: String,
        body: Box<IrExpr>,
    },
}

/// Combining operation of an inline [`IrExpr::Agg`] aggregate. All three
/// evaluation engines fold through [`AggOp::combine`], so their values
/// and error strings agree by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    Add,
    Mul,
    Min,
    Max,
    Or,
    And,
}

impl AggOp {
    /// Fold one element contribution into the accumulator.
    pub fn combine(&self, a: Value, b: Value) -> Result<Value> {
        match self {
            AggOp::Add => eval_binop(BinOp::Add, a, b),
            AggOp::Mul => eval_binop(BinOp::Mul, a, b),
            AggOp::Min => eval_free_function("min", &[a, b]),
            AggOp::Max => eval_free_function("max", &[a, b]),
            // Mirrors the short-circuit `Bin` semantics: a non-true lhs
            // decides `and`, a true lhs decides `or`, else the rhs wins.
            AggOp::Or => Ok(if a.as_bool() == Some(true) {
                Value::Bool(true)
            } else {
                b
            }),
            AggOp::And => Ok(if a.as_bool() != Some(true) {
                Value::Bool(false)
            } else {
                b
            }),
        }
    }

    /// Lower-case token used by `Display` and the pretty-printer.
    pub fn token(&self) -> &'static str {
        match self {
            AggOp::Add => "add",
            AggOp::Mul => "mul",
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Or => "or",
            AggOp::And => "and",
        }
    }
}

/// `f64` wrapper with total equality/hash so IR terms can be deduplicated
/// and blocked by hashing (§4.1's candidate blocking).
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for OrderedF64 {}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl IrExpr {
    pub fn int(n: i64) -> IrExpr {
        IrExpr::ConstInt(n)
    }
    pub fn double(x: f64) -> IrExpr {
        IrExpr::ConstDouble(OrderedF64(x))
    }
    pub fn var(name: impl Into<String>) -> IrExpr {
        IrExpr::Var(name.into())
    }
    pub fn bin(op: BinOp, l: IrExpr, r: IrExpr) -> IrExpr {
        IrExpr::Bin(op, Box::new(l), Box::new(r))
    }
    pub fn field(base: IrExpr, name: impl Into<String>) -> IrExpr {
        IrExpr::Field(Box::new(base), name.into())
    }
    pub fn tget(base: IrExpr, i: usize) -> IrExpr {
        IrExpr::TupleGet(Box::new(base), i)
    }
    pub fn ite(c: IrExpr, t: IrExpr, e: IrExpr) -> IrExpr {
        IrExpr::If(Box::new(c), Box::new(t), Box::new(e))
    }

    /// Expression length as the paper defines it for grammar classes
    /// (§4.2: `x + y` has length 2, `x + y + z` length 3): the number of
    /// leaf operands.
    pub fn length(&self) -> usize {
        match self {
            IrExpr::ConstInt(_)
            | IrExpr::ConstDouble(_)
            | IrExpr::ConstBool(_)
            | IrExpr::ConstStr(_)
            | IrExpr::Var(_) => 1,
            IrExpr::Field(b, _) | IrExpr::TupleGet(b, _) | IrExpr::Un(_, b) => b.length(),
            IrExpr::Tuple(es) => es.iter().map(IrExpr::length).sum(),
            IrExpr::Bin(_, l, r) => l.length() + r.length(),
            IrExpr::Call(_, args) | IrExpr::Method(_, _, args) => {
                1 + args.iter().map(IrExpr::length).sum::<usize>()
            }
            IrExpr::If(c, t, e) => c.length() + t.length() + e.length(),
            // The collection counts as one operand, like a call receiver.
            IrExpr::Agg { init, body, .. } => init.length() + body.length() + 1,
        }
    }

    /// Free variables referenced by this expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            IrExpr::Var(v) if !out.contains(v) => {
                out.push(v.clone());
            }
            IrExpr::Field(b, _) | IrExpr::TupleGet(b, _) | IrExpr::Un(_, b) => b.free_vars(out),
            IrExpr::Tuple(es) => {
                for e in es {
                    e.free_vars(out);
                }
            }
            IrExpr::Bin(_, l, r) => {
                l.free_vars(out);
                r.free_vars(out);
            }
            IrExpr::Call(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
            IrExpr::Method(b, _, args) => {
                b.free_vars(out);
                for a in args {
                    a.free_vars(out);
                }
            }
            IrExpr::If(c, t, e) => {
                c.free_vars(out);
                t.free_vars(out);
                e.free_vars(out);
            }
            IrExpr::Agg {
                init,
                over,
                param,
                body,
                ..
            } => {
                init.free_vars(out);
                if !out.contains(over) {
                    out.push(over.clone());
                }
                let mut inner = Vec::new();
                body.free_vars(&mut inner);
                for v in inner {
                    if v != *param && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            _ => {}
        }
    }

    /// Evaluate against an environment binding both transformer parameters
    /// and free fragment inputs.
    pub fn eval(&self, env: &Env) -> Result<Value> {
        match self {
            IrExpr::ConstInt(n) => Ok(Value::Int(*n)),
            IrExpr::ConstDouble(x) => Ok(Value::Double(x.0)),
            IrExpr::ConstBool(b) => Ok(Value::Bool(*b)),
            IrExpr::ConstStr(s) => Ok(Value::str(s)),
            IrExpr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| Error::runtime(format!("IR: unbound variable `{name}`"))),
            IrExpr::Field(base, field) => {
                let b = base.eval(env)?;
                b.field(field)
                    .cloned()
                    .ok_or_else(|| Error::runtime(format!("IR: no field `{field}` on {b}")))
            }
            IrExpr::TupleGet(base, i) => {
                let b = base.eval(env)?;
                b.tuple_get(*i)
                    .cloned()
                    .ok_or_else(|| Error::runtime(format!("IR: tuple index {i} on {b}")))
            }
            IrExpr::Tuple(es) => {
                let mut vals = Vec::with_capacity(es.len());
                for e in es {
                    vals.push(e.eval(env)?);
                }
                Ok(Value::Tuple(vals))
            }
            IrExpr::Bin(op, l, r) => {
                // Short-circuit like the source language.
                match op {
                    BinOp::And => {
                        if l.eval(env)?.as_bool() != Some(true) {
                            return Ok(Value::Bool(false));
                        }
                        return r.eval(env);
                    }
                    BinOp::Or => {
                        if l.eval(env)?.as_bool() == Some(true) {
                            return Ok(Value::Bool(true));
                        }
                        return r.eval(env);
                    }
                    _ => {}
                }
                eval_binop(*op, l.eval(env)?, r.eval(env)?)
            }
            IrExpr::Un(op, e) => {
                let v = e.eval(env)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(n.wrapping_neg())),
                    (UnOp::Neg, Value::Double(x)) => Ok(Value::Double(-x)),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::BitNot, Value::Int(n)) => Ok(Value::Int(!n)),
                    (op, v) => Err(Error::runtime(format!("IR: bad unary {op:?} on {v}"))),
                }
            }
            IrExpr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env)?);
                }
                eval_free_function(name, &vals)
            }
            IrExpr::Method(base, name, args) => {
                let b = base.eval(env)?;
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env)?);
                }
                eval_pure_method(&b, name, &vals)
            }
            IrExpr::If(c, t, e) => {
                let cond = c
                    .eval(env)?
                    .as_bool()
                    .ok_or_else(|| Error::runtime("IR: non-bool condition"))?;
                if cond {
                    t.eval(env)
                } else {
                    e.eval(env)
                }
            }
            IrExpr::Agg {
                op,
                init,
                over,
                param,
                body,
            } => {
                let mut acc = init.eval(env)?;
                let coll = env
                    .get(over)
                    .cloned()
                    .ok_or_else(|| Error::runtime(format!("IR: unbound variable `{over}`")))?;
                let elems = coll
                    .elements()
                    .ok_or_else(|| Error::runtime(format!("`{over}` is not a collection")))?;
                let mut env2 = env.clone();
                for e in elems {
                    env2.set(param.clone(), e.clone());
                    let v = body.eval(&env2)?;
                    acc = op.combine(acc, v)?;
                }
                Ok(acc)
            }
        }
    }
}

impl fmt::Display for IrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrExpr::ConstInt(n) => write!(f, "{n}"),
            IrExpr::ConstDouble(x) => write!(f, "{}", x.0),
            IrExpr::ConstBool(b) => write!(f, "{b}"),
            IrExpr::ConstStr(s) => write!(f, "{s:?}"),
            IrExpr::Var(v) => write!(f, "{v}"),
            IrExpr::Field(b, name) => write!(f, "{b}.{name}"),
            IrExpr::TupleGet(b, i) => write!(f, "{b}.{i}"),
            IrExpr::Tuple(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            IrExpr::Bin(op, l, r) => write!(f, "({l} {op} {r})"),
            IrExpr::Un(op, e) => {
                let s = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                };
                write!(f, "{s}{e}")
            }
            IrExpr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            IrExpr::Method(b, name, args) => {
                write!(f, "{b}.{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            IrExpr::If(c, t, e) => write!(f, "if {c} then {t} else {e}"),
            IrExpr::Agg {
                op,
                init,
                over,
                param,
                body,
            } => write!(f, "agg_{}({init}, {param} in {over}, {body})", op.token()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqlang::ast::BinOp;

    fn env(pairs: &[(&str, Value)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn evaluates_arithmetic() {
        let e = IrExpr::bin(BinOp::Add, IrExpr::var("x"), IrExpr::int(1));
        let v = e.eval(&env(&[("x", Value::Int(41))])).unwrap();
        assert_eq!(v, Value::Int(42));
    }

    #[test]
    fn evaluates_conditional() {
        let e = IrExpr::ite(
            IrExpr::bin(BinOp::Gt, IrExpr::var("x"), IrExpr::int(0)),
            IrExpr::int(1),
            IrExpr::int(-1),
        );
        assert_eq!(
            e.eval(&env(&[("x", Value::Int(5))])).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            e.eval(&env(&[("x", Value::Int(-5))])).unwrap(),
            Value::Int(-1)
        );
    }

    #[test]
    fn evaluates_tuples() {
        let e = IrExpr::tget(IrExpr::Tuple(vec![IrExpr::int(7), IrExpr::int(8)]), 1);
        assert_eq!(e.eval(&Env::new()).unwrap(), Value::Int(8));
    }

    #[test]
    fn unbound_variable_is_an_error() {
        assert!(IrExpr::var("nope").eval(&Env::new()).is_err());
    }

    #[test]
    fn length_matches_paper_definition() {
        // x + y has length 2; x + y + z has length 3.
        let xy = IrExpr::bin(BinOp::Add, IrExpr::var("x"), IrExpr::var("y"));
        assert_eq!(xy.length(), 2);
        let xyz = IrExpr::bin(BinOp::Add, xy.clone(), IrExpr::var("z"));
        assert_eq!(xyz.length(), 3);
    }

    #[test]
    fn library_calls_evaluate() {
        let e = IrExpr::Call("min".into(), vec![IrExpr::int(4), IrExpr::var("v")]);
        assert_eq!(
            e.eval(&env(&[("v", Value::Int(2))])).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            e.eval(&env(&[("v", Value::Int(9))])).unwrap(),
            Value::Int(4)
        );
    }

    #[test]
    fn short_circuit_and() {
        // (false && (1/0 > 0)) must not evaluate the rhs.
        let e = IrExpr::bin(
            BinOp::And,
            IrExpr::ConstBool(false),
            IrExpr::bin(
                BinOp::Gt,
                IrExpr::bin(BinOp::Div, IrExpr::int(1), IrExpr::int(0)),
                IrExpr::int(0),
            ),
        );
        assert_eq!(e.eval(&Env::new()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn agg_folds_over_collection() {
        // agg_add(0, a in gs, a * x) over gs=[1,2,3], x=2 → 12.
        let e = IrExpr::Agg {
            op: AggOp::Add,
            init: Box::new(IrExpr::int(0)),
            over: "gs".into(),
            param: "a".into(),
            body: Box::new(IrExpr::bin(BinOp::Mul, IrExpr::var("a"), IrExpr::var("x"))),
        };
        let st = env(&[
            (
                "gs",
                Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            ),
            ("x", Value::Int(2)),
        ]);
        assert_eq!(e.eval(&st).unwrap(), Value::Int(12));
        // Empty collection yields the init value.
        let empty = env(&[("gs", Value::List(vec![])), ("x", Value::Int(2))]);
        assert_eq!(e.eval(&empty).unwrap(), Value::Int(0));
        // Free vars: the init's, the collection, the body's minus `a`.
        let mut vs = vec![];
        e.free_vars(&mut vs);
        assert_eq!(vs, vec!["gs".to_string(), "x".to_string()]);
        // Length: init + body leaves + the collection.
        assert_eq!(e.length(), 4);
    }

    #[test]
    fn agg_error_paths() {
        let e = IrExpr::Agg {
            op: AggOp::Max,
            init: Box::new(IrExpr::int(0)),
            over: "gs".into(),
            param: "a".into(),
            body: Box::new(IrExpr::var("a")),
        };
        let unbound = e.eval(&Env::new()).unwrap_err().to_string();
        assert!(unbound.contains("unbound variable `gs`"), "{unbound}");
        let not_coll = e
            .eval(&env(&[("gs", Value::Int(3))]))
            .unwrap_err()
            .to_string();
        assert!(not_coll.contains("is not a collection"), "{not_coll}");
    }

    #[test]
    fn free_vars_deduplicated() {
        let e = IrExpr::bin(
            BinOp::Add,
            IrExpr::var("x"),
            IrExpr::bin(BinOp::Mul, IrExpr::var("x"), IrExpr::var("y")),
        );
        let mut vs = vec![];
        e.free_vars(&mut vs);
        assert_eq!(vs, vec!["x".to_string(), "y".to_string()]);
    }
}
