//! Deterministic executable semantics for the summary IR.
//!
//! This evaluator is the reference semantics used by bounded model
//! checking (§3.4) and full verification (§4.1): a summary is evaluated
//! against a concrete program state and its reconstructed outputs are
//! compared with the outputs the sequential fragment computes.

use std::collections::HashMap;

use seqlang::error::{Error, Result};
use seqlang::value::Value;
use seqlang::Env;

use crate::lambda::{MapLambda, ReduceLambda};
use crate::mr::{DataShape, MrExpr, OutputBinding, OutputKind, ProgramSummary};

/// Evaluation context: the concrete program state (inputs and pre-loop
/// output values) a summary is evaluated against.
#[derive(Debug, Clone)]
pub struct EvalCtx<'a> {
    /// Full pre-state of the fragment: input variables and the pre-loop
    /// values of output variables.
    pub state: &'a Env,
}

/// A record flowing between stages: data sources produce records of their
/// shape's arity; map/reduce/join stages produce `[key, value]` records.
pub(crate) type Row = Vec<Value>;

impl<'a> EvalCtx<'a> {
    pub fn new(state: &'a Env) -> Self {
        EvalCtx { state }
    }

    /// Evaluate a whole summary: returns the post-values of every bound
    /// output variable.
    pub fn eval_summary(&self, summary: &ProgramSummary) -> Result<Env> {
        let mut out = Env::new();
        for binding in &summary.bindings {
            self.eval_binding(binding, &mut out)?;
        }
        Ok(out)
    }

    fn eval_binding(&self, binding: &OutputBinding, out: &mut Env) -> Result<()> {
        let rows = self.eval_mr(&binding.expr)?;
        reconstruct_output(self.state, &binding.vars, &binding.kind, &rows, out)
    }

    /// Evaluate an MR pipeline to its key/value multiset.
    pub fn eval_mr(&self, expr: &MrExpr) -> Result<Vec<Row>> {
        match expr {
            MrExpr::Data(src) => eval_data(self.state, src),
            MrExpr::Map(inner, lambda) => {
                let input = self.eval_mr(inner)?;
                self.eval_map(lambda, &input)
            }
            MrExpr::Reduce(inner, lambda) => {
                let input = self.eval_mr(inner)?;
                self.eval_reduce(lambda, &input)
            }
            MrExpr::Join(l, r) => {
                let left = self.eval_mr(l)?;
                let right = self.eval_mr(r)?;
                eval_join(&left, &right)
            }
        }
    }

    fn eval_map(&self, lambda: &MapLambda, input: &[Row]) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(input.len() * lambda.emits.len().max(1));
        let mut env = self.state.clone();
        for row in input {
            if row.len() != lambda.params.len() {
                return Err(Error::runtime(format!(
                    "map λ expects {} params, record has {} fields",
                    lambda.params.len(),
                    row.len()
                )));
            }
            for (p, v) in lambda.params.iter().zip(row) {
                env.set(p.clone(), v.clone());
            }
            for emit in &lambda.emits {
                let fire = match &emit.cond {
                    Some(c) => c
                        .eval(&env)?
                        .as_bool()
                        .ok_or_else(|| Error::runtime("emit guard not a bool"))?,
                    None => true,
                };
                if fire {
                    let k = emit.key.eval(&env)?;
                    let v = emit.val.eval(&env)?;
                    out.push(vec![k, v]);
                }
            }
        }
        Ok(out)
    }

    fn eval_reduce(&self, lambda: &ReduceLambda, input: &[Row]) -> Result<Vec<Row>> {
        // Group by key, preserving first-appearance order of keys and the
        // within-group order of values (the deterministic semantics both
        // verification phases rely on; commutativity is checked separately
        // before codegen may parallelise the reduction).
        let groups = group_by_key(input)?;
        let mut out = Vec::with_capacity(groups.len());
        let mut env = self.state.clone();
        for (k, vals) in groups {
            let mut acc = vals[0].clone();
            for v in &vals[1..] {
                env.set(lambda.params[0].clone(), acc);
                env.set(lambda.params[1].clone(), v.clone());
                acc = lambda.body.eval(&env)?;
            }
            out.push(vec![k, acc]);
        }
        Ok(out)
    }
}

/// Produce a data source's record multiset from the program state — shared
/// by the tree-walking evaluator and [`crate::compile::CompiledSummary`].
pub(crate) fn eval_data(state: &Env, src: &crate::mr::DataSource) -> Result<Vec<Row>> {
    let coll = state
        .get(&src.var)
        .ok_or_else(|| Error::runtime(format!("no input `{}`", src.var)))?;
    let elems = coll
        .elements()
        .ok_or_else(|| Error::runtime(format!("`{}` is not a collection", src.var)))?;
    match src.shape {
        DataShape::Flat => Ok(elems.iter().map(|e| vec![e.clone()]).collect()),
        DataShape::Indexed => Ok(elems
            .iter()
            .enumerate()
            .map(|(i, e)| vec![Value::Int(i as i64), e.clone()])
            .collect()),
        DataShape::Indexed2D => {
            let mut rows = Vec::new();
            for (i, row) in elems.iter().enumerate() {
                let inner = row
                    .elements()
                    .ok_or_else(|| Error::runtime(format!("`{}` is not 2-D", src.var)))?;
                for (j, e) in inner.iter().enumerate() {
                    rows.push(vec![Value::Int(i as i64), Value::Int(j as i64), e.clone()]);
                }
            }
            Ok(rows)
        }
    }
}

/// Group a key/value multiset by key, preserving first-appearance order of
/// keys and the within-group order of values.
pub(crate) fn group_by_key(input: &[Row]) -> Result<Vec<(Value, Vec<Value>)>> {
    let mut order: Vec<Value> = Vec::new();
    let mut groups: HashMap<Value, Vec<Value>> = HashMap::new();
    for row in input {
        let [k, v] = row.as_slice() else {
            return Err(Error::runtime("reduce input is not key/value"));
        };
        groups.entry(k.clone()).or_insert_with(|| {
            order.push(k.clone());
            Vec::new()
        });
        groups.get_mut(k).expect("just inserted").push(v.clone());
    }
    Ok(order
        .into_iter()
        .map(|k| {
            let vals = groups.remove(&k).expect("grouped");
            (k, vals)
        })
        .collect())
}

fn pre_value(state: &Env, var: &str) -> Result<Value> {
    state
        .get(var)
        .cloned()
        .ok_or_else(|| Error::runtime(format!("output `{var}` missing from pre-state")))
}

fn extract_single(rows: &[Row]) -> Result<Option<Value>> {
    match rows {
        [] => Ok(None),
        [row] => Ok(Some(row[row.len() - 1].clone())),
        _ => Err(Error::runtime(format!(
            "scalar output produced {} pairs (expected ≤ 1)",
            rows.len()
        ))),
    }
}

fn extract_scalar(state: &Env, rows: &[Row], var: &str) -> Result<Value> {
    match extract_single(rows)? {
        Some(v) => Ok(v),
        None => pre_value(state, var),
    }
}

/// Reconstruct the values of `vars` from a pipeline's key/value multiset
/// according to the binding's [`OutputKind`] — the single semantics shared
/// by the tree-walking evaluator and the compiled evaluator, so the two
/// can never diverge on output reconstruction.
pub(crate) fn reconstruct_output(
    state: &Env,
    vars: &[String],
    kind: &OutputKind,
    rows: &[Row],
    out: &mut Env,
) -> Result<()> {
    match kind {
        OutputKind::Scalar => {
            let var = &vars[0];
            let value = extract_scalar(state, rows, var)?;
            out.set(var.clone(), value);
        }
        OutputKind::ScalarTuple => {
            let value = extract_single(rows)?;
            match value {
                Some(Value::Tuple(parts)) => {
                    if parts.len() != vars.len() {
                        return Err(Error::runtime(format!(
                            "summary tuple has {} parts for {} variables",
                            parts.len(),
                            vars.len()
                        )));
                    }
                    for (var, v) in vars.iter().zip(parts) {
                        out.set(var.clone(), v);
                    }
                }
                Some(other) => {
                    return Err(Error::runtime(format!(
                        "ScalarTuple output expected tuple, got {other}"
                    )))
                }
                None => {
                    // Empty dataset: all variables keep pre-loop values.
                    for var in vars {
                        let v = pre_value(state, var)?;
                        out.set(var.clone(), v);
                    }
                }
            }
        }
        OutputKind::KeyedScalars { keys } => {
            if keys.len() != vars.len() {
                return Err(Error::runtime("KeyedScalars arity mismatch"));
            }
            for (var, key_expr) in vars.iter().zip(keys) {
                let key = key_expr.eval(state)?;
                let mut hits = rows.iter().filter(|r| r.len() == 2 && r[0] == key);
                match (hits.next(), hits.next()) {
                    (None, _) => {
                        let v = pre_value(state, var)?;
                        out.set(var.clone(), v);
                    }
                    (Some(row), None) => out.set(var.clone(), row[1].clone()),
                    (Some(_), Some(_)) => {
                        return Err(Error::runtime(format!(
                            "KeyedScalars: duplicate key {key} (missing reduce?)"
                        )))
                    }
                }
            }
        }
        OutputKind::AssocArray { len_var } => {
            let var = &vars[0];
            let len = state
                .get(len_var)
                .and_then(Value::as_int)
                .ok_or_else(|| Error::runtime(format!("length variable `{len_var}` not an int")))?;
            let pre = pre_value(state, var)?;
            let Value::Array(mut arr) = pre else {
                return Err(Error::runtime(format!("`{var}` is not an array")));
            };
            arr.resize(len as usize, Value::Int(0));
            for row in rows {
                let [k, v] = row.as_slice() else {
                    return Err(Error::runtime("non-KV row at output"));
                };
                let i = k.as_int().ok_or_else(|| {
                    Error::runtime(format!("array output needs int keys, got {k}"))
                })?;
                if i < 0 || i as usize >= arr.len() {
                    return Err(Error::runtime(format!(
                        "array output key {i} out of bounds (len {})",
                        arr.len()
                    )));
                }
                arr[i as usize] = v.clone();
            }
            out.set(var.clone(), Value::Array(arr));
        }
        OutputKind::AssocMap => {
            let var = &vars[0];
            let mut entries: Vec<(Value, Value)> = Vec::with_capacity(rows.len());
            for row in rows {
                let [k, v] = row.as_slice() else {
                    return Err(Error::runtime("non-KV row at output"));
                };
                if entries.iter().any(|(ek, _)| ek == k) {
                    return Err(Error::runtime(format!(
                        "map output has duplicate key {k} (missing reduce?)"
                    )));
                }
                entries.push((k.clone(), v.clone()));
            }
            out.set(var.clone(), Value::Map(entries));
        }
        OutputKind::CollectedList => {
            let var = &vars[0];
            let mut vals: Vec<Value> = rows.iter().map(|r| r[r.len() - 1].clone()).collect();
            // MapReduce output is a multiset: canonicalise by sorting.
            vals.sort();
            out.set(var.clone(), Value::List(vals));
        }
    }
    Ok(())
}

/// Join two key/value multisets on key equality: `(k,v) ⋈ (k,w) → (k,(v,w))`.
pub fn eval_join(left: &[Row], right: &[Row]) -> Result<Vec<Row>> {
    let mut index: HashMap<&Value, Vec<&Value>> = HashMap::new();
    for row in right {
        let [k, v] = row.as_slice() else {
            return Err(Error::runtime("join input is not key/value"));
        };
        index.entry(k).or_default().push(v);
    }
    let mut out = Vec::new();
    for row in left {
        let [k, v] = row.as_slice() else {
            return Err(Error::runtime("join input is not key/value"));
        };
        if let Some(matches) = index.get(k) {
            for w in matches {
                out.push(vec![k.clone(), Value::Tuple(vec![v.clone(), (*w).clone()])]);
            }
        }
    }
    Ok(out)
}

/// Convenience wrapper: evaluate `summary` against `state`, returning the
/// outputs it computes.
pub fn eval_summary(summary: &ProgramSummary, state: &Env) -> Result<Env> {
    EvalCtx::new(state).eval_summary(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::IrExpr;
    use crate::lambda::Emit;
    use crate::mr::DataSource;
    use seqlang::ast::BinOp;
    use seqlang::ty::Type;

    fn state(pairs: &[(&str, Value)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn rwm_summary() -> ProgramSummary {
        let m1 = MapLambda::new(
            vec!["i", "j", "v"],
            vec![Emit::unconditional(IrExpr::var("i"), IrExpr::var("v"))],
        );
        let r = ReduceLambda::binop(BinOp::Add);
        let m2 = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::unconditional(
                IrExpr::var("k"),
                IrExpr::bin(BinOp::Div, IrExpr::var("v"), IrExpr::var("cols")),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed_2d("mat", Type::Int))
            .map(m1)
            .reduce(r)
            .map(m2);
        ProgramSummary::single(
            "m",
            expr,
            OutputKind::AssocArray {
                len_var: "rows".into(),
            },
        )
    }

    #[test]
    fn rwm_summary_computes_row_means() {
        let mat = Value::Array(vec![
            Value::Array(vec![Value::Int(1), Value::Int(3)]),
            Value::Array(vec![Value::Int(10), Value::Int(20)]),
        ]);
        let st = state(&[
            ("mat", mat),
            ("rows", Value::Int(2)),
            ("cols", Value::Int(2)),
            ("m", Value::Array(vec![Value::Int(0), Value::Int(0)])),
        ]);
        let out = eval_summary(&rwm_summary(), &st).unwrap();
        assert_eq!(
            out.get("m"),
            Some(&Value::Array(vec![Value::Int(2), Value::Int(15)]))
        );
    }

    #[test]
    fn rwm_on_empty_matrix_keeps_prestate() {
        let st = state(&[
            ("mat", Value::Array(vec![])),
            ("rows", Value::Int(0)),
            ("cols", Value::Int(2)),
            ("m", Value::Array(vec![])),
        ]);
        let out = eval_summary(&rwm_summary(), &st).unwrap();
        assert_eq!(out.get("m"), Some(&Value::Array(vec![])));
    }

    fn sum_summary() -> ProgramSummary {
        // s = reduce(map(xs, v -> (0, v)), +)
        let m = MapLambda::new(
            vec!["v"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("v"))],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        ProgramSummary::single("s", expr, OutputKind::Scalar)
    }

    #[test]
    fn scalar_sum() {
        let st = state(&[
            (
                "xs",
                Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            ),
            ("s", Value::Int(0)),
        ]);
        let out = eval_summary(&sum_summary(), &st).unwrap();
        assert_eq!(out.get("s"), Some(&Value::Int(6)));
    }

    #[test]
    fn scalar_on_empty_input_falls_back_to_prestate() {
        let st = state(&[("xs", Value::List(vec![])), ("s", Value::Int(17))]);
        let out = eval_summary(&sum_summary(), &st).unwrap();
        assert_eq!(out.get("s"), Some(&Value::Int(17)));
    }

    #[test]
    fn word_count_as_assoc_map() {
        // counts = reduce(map(words, w -> (w, 1)), +)
        let m = MapLambda::new(
            vec!["w"],
            vec![Emit::unconditional(IrExpr::var("w"), IrExpr::int(1))],
        );
        let expr = MrExpr::Data(DataSource::flat("words", Type::Str))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        let summary = ProgramSummary::single("counts", expr, OutputKind::AssocMap);
        let st = state(&[
            (
                "words",
                Value::List(vec![Value::str("a"), Value::str("b"), Value::str("a")]),
            ),
            ("counts", Value::Map(vec![])),
        ]);
        let out = eval_summary(&summary, &st).unwrap();
        assert_eq!(
            out.get("counts"),
            Some(&Value::Map(vec![
                (Value::str("a"), Value::Int(2)),
                (Value::str("b"), Value::Int(1)),
            ]))
        );
    }

    #[test]
    fn guarded_emits_filter() {
        // evens = map with guard (v % 2 == 0), collected as a list.
        let m = MapLambda::new(
            vec!["v"],
            vec![Emit::guarded(
                IrExpr::bin(
                    BinOp::Eq,
                    IrExpr::bin(BinOp::Mod, IrExpr::var("v"), IrExpr::int(2)),
                    IrExpr::int(0),
                ),
                IrExpr::int(0),
                IrExpr::var("v"),
            )],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int)).map(m);
        let summary = ProgramSummary::single("evens", expr, OutputKind::CollectedList);
        let st = state(&[
            ("xs", Value::List((1..=6).map(Value::Int).collect())),
            ("evens", Value::List(vec![])),
        ]);
        let out = eval_summary(&summary, &st).unwrap();
        assert_eq!(
            out.get("evens"),
            Some(&Value::List(vec![
                Value::Int(2),
                Value::Int(4),
                Value::Int(6)
            ]))
        );
    }

    #[test]
    fn join_matches_keys() {
        let left = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
        ];
        let right = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(3), Value::Int(30)],
        ];
        let out = eval_join(&left, &right).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::Int(1));
        assert_eq!(
            out[0][1],
            Value::Tuple(vec![Value::str("a"), Value::Int(10)])
        );
    }

    #[test]
    fn join_pipeline_dot_product() {
        // dot = reduce(map(join(xs_indexed, ys_indexed), (k,v) -> (0, v.0*v.1)), +)
        let m = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::bin(
                    BinOp::Mul,
                    IrExpr::tget(IrExpr::var("v"), 0),
                    IrExpr::tget(IrExpr::var("v"), 1),
                ),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed("xs", Type::Int))
            .join(MrExpr::Data(DataSource::indexed("ys", Type::Int)))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        let summary = ProgramSummary::single("dot", expr, OutputKind::Scalar);
        let st = state(&[
            ("xs", Value::Array(vec![Value::Int(1), Value::Int(2)])),
            ("ys", Value::Array(vec![Value::Int(3), Value::Int(4)])),
            ("dot", Value::Int(0)),
        ]);
        let out = eval_summary(&summary, &st).unwrap();
        assert_eq!(out.get("dot"), Some(&Value::Int(11)));
    }

    #[test]
    fn scalar_with_multiple_keys_is_an_error() {
        let m = MapLambda::new(
            vec!["v"],
            vec![Emit::unconditional(IrExpr::var("v"), IrExpr::var("v"))],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int)).map(m);
        let summary = ProgramSummary::single("s", expr, OutputKind::Scalar);
        let st = state(&[
            ("xs", Value::List(vec![Value::Int(1), Value::Int(2)])),
            ("s", Value::Int(0)),
        ]);
        assert!(eval_summary(&summary, &st).is_err());
    }

    #[test]
    fn scalar_tuple_binds_multiple_vars() {
        // StringMatch solution (b): one reduce producing a pair of bools.
        let m = MapLambda::new(
            vec!["w"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::Tuple(vec![
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key1")),
                    IrExpr::bin(BinOp::Eq, IrExpr::var("w"), IrExpr::var("key2")),
                ]),
            )],
        );
        let r = ReduceLambda::new(IrExpr::Tuple(vec![
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 0),
                IrExpr::tget(IrExpr::var("v2"), 0),
            ),
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 1),
                IrExpr::tget(IrExpr::var("v2"), 1),
            ),
        ]));
        let expr = MrExpr::Data(DataSource::flat("text", Type::Str))
            .map(m)
            .reduce(r);
        let summary = ProgramSummary {
            bindings: vec![OutputBinding {
                vars: vec!["found1".into(), "found2".into()],
                expr,
                kind: OutputKind::ScalarTuple,
            }],
        };
        let st = state(&[
            (
                "text",
                Value::List(vec![Value::str("x"), Value::str("cat"), Value::str("y")]),
            ),
            ("key1", Value::str("cat")),
            ("key2", Value::str("dog")),
            ("found1", Value::Bool(false)),
            ("found2", Value::Bool(false)),
        ]);
        let out = eval_summary(&summary, &st).unwrap();
        assert_eq!(out.get("found1"), Some(&Value::Bool(true)));
        assert_eq!(out.get("found2"), Some(&Value::Bool(false)));
    }
}
