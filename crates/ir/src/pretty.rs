//! Pretty-printing of summaries in the paper's `@Summary(...)` notation
//! (Figure 1) — used in translation reports and generated "proof scripts".

use std::fmt::Write;

use crate::lambda::{MapLambda, ReduceLambda};
use crate::mr::{DataShape, MrExpr, OutputKind, ProgramSummary};

/// Render a summary as the annotation block of Figure 1(a).
pub fn pretty_summary(summary: &ProgramSummary) -> String {
    let mut out = String::from("@Summary(\n");
    for binding in &summary.bindings {
        let vars = binding.vars.join(", ");
        let mut lambdas = Vec::new();
        let skeleton = pretty_mr(&binding.expr, &mut lambdas);
        let _ = writeln!(out, "  {vars} = {skeleton}");
        for (name, body) in lambdas {
            let _ = writeln!(out, "  {name} : {body}");
        }
        let kind = match &binding.kind {
            OutputKind::Scalar => "scalar".to_string(),
            OutputKind::ScalarTuple => "scalar-tuple".to_string(),
            OutputKind::KeyedScalars { keys } => {
                let ks: Vec<String> = keys.iter().map(|k| format!("{k}")).collect();
                format!("keyed[{}]", ks.join(", "))
            }
            OutputKind::AssocArray { len_var } => format!("array[0..{len_var})"),
            OutputKind::AssocMap => "map".to_string(),
            OutputKind::CollectedList => "multiset".to_string(),
        };
        let _ = writeln!(out, "  output: {kind}");
    }
    out.push(')');
    out
}

/// Render the operator skeleton, collecting lambda definitions.
pub fn pretty_mr(expr: &MrExpr, lambdas: &mut Vec<(String, String)>) -> String {
    match expr {
        MrExpr::Data(src) => {
            let shape = match src.shape {
                DataShape::Flat => "",
                DataShape::Indexed => "[indexed]",
                DataShape::Indexed2D => "[2d]",
            };
            format!("{}{}", src.var, shape)
        }
        MrExpr::Map(inner, l) => {
            let inner_text = pretty_mr(inner, lambdas);
            let name = format!("λm{}", lambdas.len() + 1);
            lambdas.push((name.clone(), pretty_map_lambda(l)));
            format!("map({inner_text}, {name})")
        }
        MrExpr::Reduce(inner, l) => {
            let inner_text = pretty_mr(inner, lambdas);
            let name = format!("λr{}", lambdas.len() + 1);
            lambdas.push((name.clone(), pretty_reduce_lambda(l)));
            format!("reduce({inner_text}, {name})")
        }
        MrExpr::Join(l, r) => {
            format!("join({}, {})", pretty_mr(l, lambdas), pretty_mr(r, lambdas))
        }
    }
}

fn pretty_map_lambda(l: &MapLambda) -> String {
    let params = l.params.join(", ");
    let emits: Vec<String> = l
        .emits
        .iter()
        .map(|e| match &e.cond {
            Some(c) => format!("if ({c}) emit({}, {})", e.key, e.val),
            None => format!("emit({}, {})", e.key, e.val),
        })
        .collect();
    format!("({params}) → {{ {} }}", emits.join("; "))
}

fn pretty_reduce_lambda(l: &ReduceLambda) -> String {
    format!("({}, {}) → {}", l.params[0], l.params[1], l.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::IrExpr;
    use crate::lambda::Emit;
    use crate::mr::{DataSource, OutputKind};
    use seqlang::ast::BinOp;
    use seqlang::ty::Type;

    #[test]
    fn renders_rwm_like_figure_1() {
        let m1 = MapLambda::new(
            vec!["i", "j", "v"],
            vec![Emit::unconditional(IrExpr::var("i"), IrExpr::var("v"))],
        );
        let r = ReduceLambda::binop(BinOp::Add);
        let m2 = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::unconditional(
                IrExpr::var("k"),
                IrExpr::bin(BinOp::Div, IrExpr::var("v"), IrExpr::var("cols")),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed_2d("mat", Type::Int))
            .map(m1)
            .reduce(r)
            .map(m2);
        let s = ProgramSummary::single(
            "m",
            expr,
            OutputKind::AssocArray {
                len_var: "rows".into(),
            },
        );
        let text = pretty_summary(&s);
        assert!(
            text.contains("m = map(reduce(map(mat[2d], λm1), λr2), λm3)"),
            "{text}"
        );
        assert!(text.contains("(v1 + v2)"), "{text}");
        assert!(text.contains("(v / cols)"), "{text}");
    }
}
