//! Transformer functions λm and λr (Figure 3).

use seqlang::ast::BinOp;

use crate::expr::IrExpr;

/// One `emit` statement in a map transformer: optionally guarded, produces
/// a single key/value pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Emit {
    /// Guard condition; `None` emits unconditionally.
    pub cond: Option<IrExpr>,
    pub key: IrExpr,
    pub val: IrExpr,
}

impl Emit {
    pub fn unconditional(key: IrExpr, val: IrExpr) -> Emit {
        Emit {
            cond: None,
            key,
            val,
        }
    }
    pub fn guarded(cond: IrExpr, key: IrExpr, val: IrExpr) -> Emit {
        Emit {
            cond: Some(cond),
            key,
            val,
        }
    }
}

/// A map transformer λm: binds the input record to `params` and executes a
/// sequence of emit statements (paper restricts λm bodies to exactly this
/// shape, §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MapLambda {
    /// Parameter names bound per input record. Arity must match the input:
    /// data sources bind per their [`crate::mr::DataShape`]; key/value
    /// inputs (the output of an upstream map/reduce/join) bind two
    /// parameters `(k, v)`.
    pub params: Vec<String>,
    pub emits: Vec<Emit>,
}

impl MapLambda {
    pub fn new(params: Vec<&str>, emits: Vec<Emit>) -> MapLambda {
        MapLambda {
            params: params.into_iter().map(String::from).collect(),
            emits,
        }
    }
}

/// A reduce transformer λr: combines two values into one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReduceLambda {
    /// Always two parameters, conventionally `v1`, `v2`.
    pub params: [String; 2],
    pub body: IrExpr,
}

impl ReduceLambda {
    pub fn new(body: IrExpr) -> ReduceLambda {
        ReduceLambda {
            params: ["v1".to_string(), "v2".to_string()],
            body,
        }
    }

    /// Convenience constructor: `v1 op v2`.
    pub fn binop(op: BinOp) -> ReduceLambda {
        ReduceLambda::new(IrExpr::bin(op, IrExpr::var("v1"), IrExpr::var("v2")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqlang::value::Value;
    use seqlang::Env;

    #[test]
    fn reduce_binop_builder() {
        let r = ReduceLambda::binop(BinOp::Add);
        let mut env = Env::new();
        env.set("v1", Value::Int(2));
        env.set("v2", Value::Int(3));
        assert_eq!(r.body.eval(&env).unwrap(), Value::Int(5));
    }

    #[test]
    fn emit_constructors() {
        let e = Emit::guarded(IrExpr::ConstBool(true), IrExpr::var("k"), IrExpr::var("v"));
        assert!(e.cond.is_some());
        let u = Emit::unconditional(IrExpr::int(0), IrExpr::var("v"));
        assert!(u.cond.is_none());
    }
}
