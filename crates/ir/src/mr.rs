//! MapReduce pipelines and program summaries (the `PS` and `MR`
//! productions of Figure 3).

use seqlang::ty::Type;

use crate::expr::IrExpr;
use crate::lambda::{MapLambda, ReduceLambda};

/// How an input collection is presented to the first map stage.
///
/// Casper's analyzer knows how each iterated data structure is traversed;
/// the row-wise mean benchmark iterates a 2-D matrix and its λm1 binds
/// `(i, j, v)` (Figure 1). We model the three access shapes the paper's
/// benchmarks use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataShape {
    /// Elements only: λ binds one parameter, the element.
    Flat,
    /// Index + element: λ binds `(i, v)`.
    Indexed,
    /// Row index, column index, element of a 2-D array: λ binds `(i, j, v)`.
    Indexed2D,
}

impl DataShape {
    /// Number of λ parameters this shape binds.
    pub fn arity(&self) -> usize {
        match self {
            DataShape::Flat => 1,
            DataShape::Indexed => 2,
            DataShape::Indexed2D => 3,
        }
    }
}

/// A leaf of an MR pipeline: a named input collection with its access
/// shape and element type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataSource {
    pub var: String,
    pub shape: DataShape,
    pub elem_ty: Type,
}

impl DataSource {
    pub fn flat(var: impl Into<String>, elem_ty: Type) -> DataSource {
        DataSource {
            var: var.into(),
            shape: DataShape::Flat,
            elem_ty,
        }
    }
    pub fn indexed(var: impl Into<String>, elem_ty: Type) -> DataSource {
        DataSource {
            var: var.into(),
            shape: DataShape::Indexed,
            elem_ty,
        }
    }
    pub fn indexed_2d(var: impl Into<String>, elem_ty: Type) -> DataSource {
        DataSource {
            var: var.into(),
            shape: DataShape::Indexed2D,
            elem_ty,
        }
    }
}

/// An MR pipeline (`MR := map(MR, λm) | reduce(MR, λr) | join(MR, MR) | data`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MrExpr {
    Data(DataSource),
    Map(Box<MrExpr>, MapLambda),
    Reduce(Box<MrExpr>, ReduceLambda),
    Join(Box<MrExpr>, Box<MrExpr>),
}

impl MrExpr {
    pub fn map(self, lambda: MapLambda) -> MrExpr {
        MrExpr::Map(Box::new(self), lambda)
    }
    pub fn reduce(self, lambda: ReduceLambda) -> MrExpr {
        MrExpr::Reduce(Box::new(self), lambda)
    }
    pub fn join(self, other: MrExpr) -> MrExpr {
        MrExpr::Join(Box::new(self), Box::new(other))
    }

    /// Number of map/reduce/join operators in the pipeline — the first
    /// grammar-class feature of §4.2 and the "# Op" column of Table 2.
    pub fn op_count(&self) -> usize {
        match self {
            MrExpr::Data(_) => 0,
            MrExpr::Map(inner, _) | MrExpr::Reduce(inner, _) => 1 + inner.op_count(),
            MrExpr::Join(l, r) => 1 + l.op_count() + r.op_count(),
        }
    }

    /// All data sources feeding this pipeline.
    pub fn sources(&self) -> Vec<&DataSource> {
        match self {
            MrExpr::Data(d) => vec![d],
            MrExpr::Map(inner, _) | MrExpr::Reduce(inner, _) => inner.sources(),
            MrExpr::Join(l, r) => {
                let mut v = l.sources();
                v.extend(r.sources());
                v
            }
        }
    }

    /// Visit every stage bottom-up.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a MrExpr)) {
        match self {
            MrExpr::Data(_) => {}
            MrExpr::Map(inner, _) | MrExpr::Reduce(inner, _) => inner.walk(f),
            MrExpr::Join(l, r) => {
                l.walk(f);
                r.walk(f);
            }
        }
        f(self);
    }
}

/// How the key/value multiset computed by a pipeline reconstructs the
/// fragment's output variable(s) — the `v = MR | MR[vid]` forms of
/// Figure 3, extended with the collection outputs the benchmarks need.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OutputKind {
    /// A single scalar variable: the pipeline must produce at most one
    /// distinct key; the value of that pair is the variable's value. An
    /// empty result leaves the variable at its pre-loop value (this is what
    /// makes the initiation VC hold, §3.3).
    Scalar,
    /// Several scalar variables packed in one tuple-valued pair, assigned
    /// in order (e.g. the StringMatch solution (b) of Figure 8).
    ScalarTuple,
    /// Several scalar variables, each reconstructed from the pair whose
    /// key equals the paired expression evaluated on the pre-state —
    /// StringMatch solutions (a)/(c) of Figure 8, where `found1` is the
    /// value under key `key1`. Missing keys keep pre-loop values.
    KeyedScalars { keys: Vec<IrExpr> },
    /// An array output: the pair with key `Int(i)` gives element `i`;
    /// missing keys keep the pre-loop element value. `len_var` names the
    /// input variable holding the array length.
    AssocArray { len_var: String },
    /// A map output: the result pairs are exactly the map's entries.
    AssocMap,
    /// A list output: the result pair *values* are the list's elements,
    /// compared as a multiset (MapReduce provides no ordering guarantee).
    CollectedList,
}

/// One `v = MR` binding of a program summary.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OutputBinding {
    /// Output variables bound by this pipeline (one, except `ScalarTuple`).
    pub vars: Vec<String>,
    pub expr: MrExpr,
    pub kind: OutputKind,
}

/// A complete program summary: every output variable of the fragment is
/// described by exactly one binding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgramSummary {
    pub bindings: Vec<OutputBinding>,
}

impl ProgramSummary {
    pub fn single(var: impl Into<String>, expr: MrExpr, kind: OutputKind) -> ProgramSummary {
        ProgramSummary {
            bindings: vec![OutputBinding {
                vars: vec![var.into()],
                expr,
                kind,
            }],
        }
    }

    /// Total operator count across all bindings.
    pub fn op_count(&self) -> usize {
        self.bindings.iter().map(|b| b.expr.op_count()).sum()
    }

    /// Maximum emit count across all map stages (grammar-class feature 2).
    pub fn max_emits(&self) -> usize {
        let mut max = 0;
        for b in &self.bindings {
            b.expr.walk(&mut |e| {
                if let MrExpr::Map(_, l) = e {
                    max = max.max(l.emits.len());
                }
            });
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::IrExpr;
    use crate::lambda::Emit;
    use seqlang::ast::BinOp;

    /// Build the paper's Figure 1 row-wise mean summary:
    /// `m = map(reduce(map(mat, λm1), λr), λm2)`.
    pub fn rwm_summary() -> ProgramSummary {
        let m1 = MapLambda::new(
            vec!["i", "j", "v"],
            vec![Emit::unconditional(IrExpr::var("i"), IrExpr::var("v"))],
        );
        let r = ReduceLambda::binop(BinOp::Add);
        let m2 = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::unconditional(
                IrExpr::var("k"),
                IrExpr::bin(BinOp::Div, IrExpr::var("v"), IrExpr::var("cols")),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed_2d("mat", Type::Int))
            .map(m1)
            .reduce(r)
            .map(m2);
        ProgramSummary::single(
            "m",
            expr,
            OutputKind::AssocArray {
                len_var: "rows".into(),
            },
        )
    }

    #[test]
    fn op_count_of_rwm_is_three() {
        assert_eq!(rwm_summary().op_count(), 3);
    }

    #[test]
    fn sources_found() {
        let s = rwm_summary();
        let srcs = s.bindings[0].expr.sources();
        assert_eq!(srcs.len(), 1);
        assert_eq!(srcs[0].var, "mat");
        assert_eq!(srcs[0].shape.arity(), 3);
    }

    #[test]
    fn max_emits() {
        assert_eq!(rwm_summary().max_emits(), 1);
    }
}
