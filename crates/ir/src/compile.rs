//! Compiled candidate evaluation: lower a summary once, run it many times.
//!
//! The CEGIS screening loop evaluates every candidate summary against the
//! whole counter-example set Φ and the bounded domain — the same small
//! expression trees are re-walked thousands of times. [`CompiledSummary`]
//! lowers a [`ProgramSummary`] exactly once: every λ-parameter reference
//! is resolved to a slot index at compile time, constants are
//! materialised, and the expression bodies are compiled for one of two
//! [`Engine`]s — the flat bytecode VM of [`crate::bytecode`] (the
//! default), or the slot-resolved closure trees it superseded, kept alive
//! as the differential golden reference. Both engines are semantically
//! identical to [`crate::eval::eval_summary`] (all share the
//! output-reconstruction code in [`crate::eval`]), which is what lets the
//! synthesizer's screening counters stay bit-identical whichever
//! evaluator runs.
//!
//! ```
//! use casper_ir::compile::CompiledSummary;
//! use casper_ir::expr::IrExpr;
//! use casper_ir::lambda::{Emit, MapLambda, ReduceLambda};
//! use casper_ir::mr::{DataSource, MrExpr, OutputKind, ProgramSummary};
//! use seqlang::ast::BinOp;
//! use seqlang::ty::Type;
//! use seqlang::value::Value;
//! use seqlang::Env;
//!
//! // s = reduce(map(xs, x -> (0, x)), +)
//! let m = MapLambda::new(
//!     vec!["x"],
//!     vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
//! );
//! let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
//!     .map(m)
//!     .reduce(ReduceLambda::binop(BinOp::Add));
//! let summary = ProgramSummary::single("s", expr, OutputKind::Scalar);
//!
//! let compiled = CompiledSummary::compile(&summary);
//! let mut state = Env::new();
//! state.set("xs", Value::List((1..=4).map(Value::Int).collect()));
//! state.set("s", Value::Int(0));
//!
//! let out = compiled.eval(&state).unwrap();
//! assert_eq!(out.get("s"), Some(&Value::Int(10)));
//! // Bit-identical to the tree-walking reference evaluator.
//! assert_eq!(out, casper_ir::eval::eval_summary(&summary, &state).unwrap());
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use seqlang::ast::{BinOp, UnOp};
use seqlang::buf::{
    FastCombine, RecordArena, StateCellEntry, ValueBuf, TAG_BOOL, TAG_BOXED, TAG_DOUBLE, TAG_INT,
    TAG_UNIT,
};
use seqlang::error::{Error, Result};
use seqlang::interp::{eval_binop, eval_free_function, eval_pure_method};
use seqlang::value::Value;
use seqlang::Env;

use crate::bytecode::{Chunk, Engine};
use crate::eval::{eval_data, eval_join, group_by_key, reconstruct_output, Row};
use crate::expr::IrExpr;
use crate::lambda::{MapLambda, ReduceLambda};
use crate::mr::{DataSource, MrExpr, OutputKind, ProgramSummary};

/// Execution frame a compiled expression runs against: the λ-parameter
/// slots of the enclosing transformer plus the free-variable state.
struct Frame<'a> {
    locals: &'a [Value],
    state: &'a Env,
}

/// A compiled IR expression: all structure folded into one closure tree.
type ExprFn = Box<dyn Fn(&Frame<'_>) -> Result<Value> + Send + Sync>;

/// One expression lowered for a specific [`Engine`]: a flat bytecode
/// chunk (the default) or the closure tree kept as the differential
/// golden reference. Both produce bit-identical values and errors; the
/// dispatch is one match at the λ-application boundary, outside the
/// per-node hot path.
enum ExprProgram {
    Vm(Chunk),
    Tree(ExprFn),
}

impl ExprProgram {
    fn compile<P: AsRef<str>>(e: &IrExpr, params: &[P], engine: Engine) -> ExprProgram {
        match engine {
            // Size/shape heuristic: shallow expressions stay on the
            // closure-tree path even under the bytecode engine. For a
            // tiny body the VM cannot win — the emitter's pool-dedup
            // compile costs more than boxing a few closures (screening
            // compiles every candidate and evaluates it a handful of
            // times), and per-run the scratch-stack round trip of a
            // non-linear chunk dwarfs its few instructions. The bill
            // only tips toward the VM on deeper trees, where flat
            // dispatch amortizes both. Decided on the *expression*, not
            // the chunk, so the losing path is never compiled. Both
            // lowerings are bit-identical in values and errors; only
            // the time split changes.
            Engine::Bytecode if tree_weight(e) <= TINY_EXPR_WEIGHT => {
                ExprProgram::Tree(compile_expr(e, params))
            }
            Engine::Bytecode => ExprProgram::Vm(Chunk::compile(e, params)),
            Engine::ClosureTree => ExprProgram::Tree(compile_expr(e, params)),
        }
    }

    fn run(&self, f: &Frame<'_>) -> Result<Value> {
        match self {
            ExprProgram::Vm(chunk) => chunk.run(f.locals, f.state),
            ExprProgram::Tree(func) => func(f),
        }
    }
}

/// Expressions at or below this weight compile to closure trees even
/// under [`Engine::Bytecode`] — see the heuristic note in
/// [`ExprProgram::compile`]. Calibrated against the bytecode bench:
/// screening candidates (tiny guarded emits and aggregate bodies) land
/// below it, the depth-8 reduce chain (17 nodes, where the VM already
/// wins 1.3x) lands above.
const TINY_EXPR_WEIGHT: usize = 16;

/// The size/shape weight driving the engine-dispatch heuristic: node
/// count, with an inline aggregate charged double for its body — the
/// body re-runs once per collection element, so its depth counts more
/// toward where flat VM dispatch starts paying off.
fn tree_weight(e: &IrExpr) -> usize {
    match e {
        IrExpr::ConstInt(_)
        | IrExpr::ConstDouble(_)
        | IrExpr::ConstBool(_)
        | IrExpr::ConstStr(_)
        | IrExpr::Var(_) => 1,
        IrExpr::Field(base, _) | IrExpr::TupleGet(base, _) | IrExpr::Un(_, base) => {
            1 + tree_weight(base)
        }
        IrExpr::Tuple(es) | IrExpr::Call(_, es) => 1 + es.iter().map(tree_weight).sum::<usize>(),
        IrExpr::Method(base, _, es) => {
            1 + tree_weight(base) + es.iter().map(tree_weight).sum::<usize>()
        }
        IrExpr::Bin(_, l, r) => 1 + tree_weight(l) + tree_weight(r),
        IrExpr::If(c, t, e2) => 1 + tree_weight(c) + tree_weight(t) + tree_weight(e2),
        IrExpr::Agg { init, body, .. } => 2 + tree_weight(init) + 2 * tree_weight(body),
    }
}

/// Where a compiled emit expression gets its value from, decided at
/// compile time. `Slot` and `Const` let the buffer-backed data plane copy
/// cells between partition buffers without ever materializing a `Value`;
/// `Cell` evaluates a small arithmetic/comparison tree directly over raw
/// `(tag, word)` cells (punting to the expression engine per record when
/// an operand is not inline-numeric or an error path is hit); only
/// `Dynamic` expressions always fall back to the expression engine.
enum EmitSrc {
    /// The bare λ parameter at this frame slot.
    Slot(usize),
    /// A literal, materialized once at compile time.
    Const(Value),
    /// A raw-cell program over slots, inline constants, and resolved
    /// state scalars.
    Cell(CellExpr),
    /// Anything else: run the compiled expression program.
    Dynamic,
}

impl EmitSrc {
    fn classify<P: AsRef<str>>(e: &IrExpr, params: &[P]) -> EmitSrc {
        match e {
            IrExpr::Var(name) => match params.iter().rposition(|p| p.as_ref() == name) {
                Some(slot) => EmitSrc::Slot(slot),
                None => EmitSrc::Dynamic,
            },
            IrExpr::ConstInt(n) => EmitSrc::Const(Value::Int(*n)),
            IrExpr::ConstDouble(x) => EmitSrc::Const(Value::Double(x.0)),
            IrExpr::ConstBool(b) => EmitSrc::Const(Value::Bool(*b)),
            IrExpr::ConstStr(s) => EmitSrc::Const(Value::str(s.as_str())),
            _ => EmitSrc::Dynamic,
        }
    }

    /// [`classify`](Self::classify), then try to lower a `Dynamic`
    /// binary-operator tree to a raw-cell program. State variables the
    /// program reads are registered in `state_vars` (deduplicated); the λ
    /// resolves them to cells once per partition pass.
    fn classify_cell<P: AsRef<str>>(
        e: &IrExpr,
        params: &[P],
        state_vars: &mut Vec<String>,
    ) -> EmitSrc {
        match EmitSrc::classify(e, params) {
            EmitSrc::Dynamic => match e {
                IrExpr::Bin(op, _, _) if cell_op_supported(*op) => {
                    match CellExpr::classify(e, params, state_vars) {
                        Some(prog) => EmitSrc::Cell(prog),
                        None => EmitSrc::Dynamic,
                    }
                }
                _ => EmitSrc::Dynamic,
            },
            other => other,
        }
    }
}

/// A small expression lowered to run directly over raw `(tag, word)`
/// cells — no `Value` materialization, no frame, no boxing. Evaluation
/// returns `None` ("punt") whenever the raw semantics could diverge from
/// [`eval_binop`] — non-inline operands, error paths like integer
/// division by zero — and the caller falls back to the expression engine
/// for that record, so values *and* errors stay bit-identical.
enum CellExpr {
    /// λ-parameter cell at this slot (punts on non-inline tags).
    Slot(usize),
    /// Resolved state scalar at this index of the λ's state-cell frame.
    State(usize),
    /// An inline literal cell.
    Const(u8, u64),
    Bin(BinOp, Box<CellExpr>, Box<CellExpr>),
}

/// Operators [`cell_binop`] reproduces bit-for-bit on inline cells.
/// `And`/`Or` are excluded (short-circuit evaluation order), as are the
/// string/collection operators.
fn cell_op_supported(op: BinOp) -> bool {
    use BinOp::*;
    matches!(
        op,
        Add | Sub
            | Mul
            | Div
            | Mod
            | Lt
            | Gt
            | Le
            | Ge
            | Eq
            | Ne
            | BitAnd
            | BitOr
            | BitXor
            | Shl
            | Shr
    )
}

impl CellExpr {
    fn classify<P: AsRef<str>>(
        e: &IrExpr,
        params: &[P],
        state_vars: &mut Vec<String>,
    ) -> Option<CellExpr> {
        match e {
            IrExpr::Var(name) => match params.iter().rposition(|p| p.as_ref() == name) {
                Some(slot) => Some(CellExpr::Slot(slot)),
                None => {
                    let idx = match state_vars.iter().position(|v| v == name) {
                        Some(i) => i,
                        None => {
                            state_vars.push(name.clone());
                            state_vars.len() - 1
                        }
                    };
                    Some(CellExpr::State(idx))
                }
            },
            IrExpr::ConstInt(n) => Some(CellExpr::Const(TAG_INT, *n as u64)),
            IrExpr::ConstDouble(x) => Some(CellExpr::Const(TAG_DOUBLE, x.0.to_bits())),
            IrExpr::ConstBool(b) => Some(CellExpr::Const(TAG_BOOL, *b as u64)),
            IrExpr::Bin(op, l, r) if cell_op_supported(*op) => {
                let lc = CellExpr::classify(l, params, state_vars)?;
                let rc = CellExpr::classify(r, params, state_vars)?;
                Some(CellExpr::Bin(*op, Box::new(lc), Box::new(rc)))
            }
            _ => None,
        }
    }

    /// Evaluate over row `row` of `src` and the λ's resolved state cells.
    /// `None` = punt to the expression engine for this record.
    fn eval(&self, src: &ValueBuf, row: usize, state_cells: &[(u8, u64)]) -> Option<(u8, u64)> {
        match self {
            CellExpr::Slot(slot) => {
                let c = src.cell_raw(row, *slot);
                if c.0 <= TAG_BOOL {
                    Some(c)
                } else {
                    None
                }
            }
            CellExpr::State(idx) => {
                let c = state_cells[*idx];
                if c.0 == TAG_BOXED {
                    None
                } else {
                    Some(c)
                }
            }
            CellExpr::Const(tag, word) => Some((*tag, *word)),
            CellExpr::Bin(op, l, r) => {
                let a = l.eval(src, row, state_cells)?;
                let b = r.eval(src, row, state_cells)?;
                cell_binop(*op, a, b)
            }
        }
    }
}

/// [`eval_binop`] over raw inline cells. Mirrors the `Value` semantics
/// exactly: wrapping `Int` arithmetic, `Double` promotion when either
/// operand is a double, orderings through `f64` even for `Int`/`Int`,
/// `num_eq` equality. Returns `None` on every path where `eval_binop`
/// would error (integer div/mod by zero, non-numeric comparison
/// operands, unsupported pairings) — the caller's fallback reproduces
/// the exact error.
fn cell_binop(op: BinOp, l: (u8, u64), r: (u8, u64)) -> Option<(u8, u64)> {
    use BinOp::*;
    let (lt, lw) = l;
    let (rt, rw) = r;
    let num = |t: u8, w: u64| -> Option<f64> {
        match t {
            TAG_INT => Some(w as i64 as f64),
            TAG_DOUBLE => Some(f64::from_bits(w)),
            _ => None,
        }
    };
    match op {
        Add | Sub | Mul if lt == TAG_INT && rt == TAG_INT => {
            let (a, b) = (lw as i64, rw as i64);
            let v = match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                _ => a.wrapping_mul(b),
            };
            Some((TAG_INT, v as u64))
        }
        Div | Mod if lt == TAG_INT && rt == TAG_INT => {
            let (a, b) = (lw as i64, rw as i64);
            if b == 0 {
                return None; // the engine raises "division/modulo by zero"
            }
            let v = match op {
                Div => a.wrapping_div(b),
                _ => a.wrapping_rem(b),
            };
            Some((TAG_INT, v as u64))
        }
        Add | Sub | Mul | Div | Mod => {
            let (a, b) = (num(lt, lw)?, num(rt, rw)?);
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                _ => a % b,
            };
            Some((TAG_DOUBLE, v.to_bits()))
        }
        Lt | Gt | Le | Ge => {
            // Int/Int orderings also go through f64 — exactly eval_binop.
            let (a, b) = (num(lt, lw)?, num(rt, rw)?);
            let v = match op {
                Lt => a < b,
                Gt => a > b,
                Le => a <= b,
                _ => a >= b,
            };
            Some((TAG_BOOL, v as u64))
        }
        Eq | Ne => {
            let eq = match (lt, rt) {
                (TAG_INT, TAG_INT) => lw as i64 == rw as i64,
                (TAG_INT, TAG_DOUBLE) | (TAG_DOUBLE, TAG_INT) | (TAG_DOUBLE, TAG_DOUBLE) => {
                    // num_eq: numeric pairs compare as f64 (NaN ≠ NaN,
                    // 0.0 == -0.0), matching Value's PartialEq on Double.
                    num(lt, lw)? == num(rt, rw)?
                }
                (TAG_BOOL, TAG_BOOL) => (lw != 0) == (rw != 0),
                (TAG_UNIT, TAG_UNIT) => true,
                // Inline cross-variant values are never equal.
                _ => false,
            };
            Some((TAG_BOOL, (if op == Eq { eq } else { !eq }) as u64))
        }
        BitAnd | BitOr | BitXor | Shl | Shr if lt == TAG_INT && rt == TAG_INT => {
            let (a, b) = (lw as i64, rw as i64);
            let v = match op {
                BitAnd => a & b,
                BitOr => a | b,
                BitXor => a ^ b,
                Shl => a.wrapping_shl(b as u32),
                _ => a.wrapping_shr(b as u32),
            };
            Some((TAG_INT, v as u64))
        }
        _ => None,
    }
}

/// One compiled emit statement of a map transformer.
struct CompiledEmit {
    cond: Option<ExprProgram>,
    cond_src: Option<EmitSrc>,
    key: ExprProgram,
    key_src: EmitSrc,
    val: ExprProgram,
    val_src: EmitSrc,
}

/// A pending output cell of the buffered λ application: computed in
/// source order (key before value, so error identity matches the boxed
/// path) but committed to the output buffer only once both exist.
enum PendingCell<'a> {
    Copy(usize),
    Borrowed(&'a Value),
    Raw(u8, u64),
    Owned(Value),
}

impl PendingCell<'_> {
    fn commit(self, src: &ValueBuf, row: usize, out: &mut ValueBuf) {
        match self {
            PendingCell::Copy(slot) => out.copy_cell_from(src, row, slot),
            PendingCell::Borrowed(v) => out.push_value(v),
            PendingCell::Raw(tag, word) => out.push_raw_cell(tag, word),
            PendingCell::Owned(v) => out.push_value(&v),
        }
    }
}

/// A map transformer λm lowered once to slot-resolved closures: parameter
/// references become frame-slot reads, so applying the λ to a record is a
/// handful of direct calls — no `Env` clone, no name hashing, no tree
/// walk. Shared by [`CompiledSummary`] and the execution data plane
/// (`codegen::plan`'s fused stages), so the two lowerings cannot diverge.
pub struct CompiledMapLambda {
    arity: usize,
    emits: Vec<CompiledEmit>,
    free_vars: Vec<String>,
    /// State variables the λ's cell programs read, in registration order;
    /// resolved to raw cells once per (arena, state) pass.
    cell_state_vars: Vec<String>,
    /// Whether any emit lowered to a [`EmitSrc::Cell`] program.
    has_cell_emits: bool,
    /// Process-unique compile id keying the arena's state-cell cache.
    id: u64,
}

/// Compile ids for [`CompiledMapLambda`]; only used as cache keys, never
/// ordered or persisted, so a relaxed global counter is fine.
static NEXT_LAMBDA_ID: AtomicU64 = AtomicU64::new(1);

impl CompiledMapLambda {
    /// Lower `lambda` with the default engine (the bytecode VM).
    pub fn compile(lambda: &MapLambda) -> CompiledMapLambda {
        CompiledMapLambda::compile_with(lambda, Engine::default())
    }

    /// Lower `lambda` for `engine`, resolving its parameters to frame
    /// slots.
    pub fn compile_with(lambda: &MapLambda, engine: Engine) -> CompiledMapLambda {
        let mut free = Vec::new();
        for emit in &lambda.emits {
            if let Some(c) = &emit.cond {
                c.free_vars(&mut free);
            }
            emit.key.free_vars(&mut free);
            emit.val.free_vars(&mut free);
        }
        free.retain(|v| !lambda.params.iter().any(|p| p == v));
        let (emits, cell_state_vars) = compile_map(lambda, engine);
        let has_cell_emits = emits.iter().any(|e| {
            matches!(e.cond_src, Some(EmitSrc::Cell(_)))
                || matches!(e.key_src, EmitSrc::Cell(_))
                || matches!(e.val_src, EmitSrc::Cell(_))
        });
        CompiledMapLambda {
            arity: lambda.params.len(),
            emits,
            free_vars: free,
            cell_state_vars,
            has_cell_emits,
            id: NEXT_LAMBDA_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Number of record fields the λ binds.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// State variables the λ body reads besides its parameters.
    pub fn free_vars(&self) -> &[String] {
        &self.free_vars
    }

    /// Apply the λ to one record frame, appending the emitted key/value
    /// pairs to `out`. Guard and shape errors propagate exactly like the
    /// tree-walking evaluator's.
    pub fn apply_into(
        &self,
        row: &[Value],
        state: &Env,
        out: &mut Vec<(Value, Value)>,
    ) -> Result<()> {
        if row.len() != self.arity {
            return Err(Error::runtime(format!(
                "map λ expects {} params, record has {} fields",
                self.arity,
                row.len()
            )));
        }
        let frame = Frame { locals: row, state };
        for emit in &self.emits {
            let fire = match &emit.cond {
                Some(c) => c
                    .run(&frame)?
                    .as_bool()
                    .ok_or_else(|| Error::runtime("emit guard not a bool"))?,
                None => true,
            };
            if fire {
                let k = emit.key.run(&frame)?;
                let v = emit.val.run(&frame)?;
                out.push((k, v));
            }
        }
        Ok(())
    }

    /// Apply the λ to row `row` of a partition buffer, appending the
    /// emitted key/value cells to `out` — the buffered counterpart of
    /// [`apply_into`](Self::apply_into), with identical value, error, and
    /// evaluation-order semantics. Slot and constant emits copy cells
    /// directly between buffers; only dynamic expressions materialize the
    /// record into `arena` (once per record, lazily) and box their result.
    pub fn apply_into_buf(
        &self,
        src: &ValueBuf,
        row: usize,
        state: &Env,
        out: &mut ValueBuf,
        arena: &mut RecordArena,
    ) -> Result<()> {
        if src.width() != self.arity {
            return Err(Error::runtime(format!(
                "map λ expects {} params, record has {} fields",
                self.arity,
                src.width()
            )));
        }
        let mut have_locals = false;
        // Resolve the cell programs' state scalars once per (arena, state)
        // pass; `usize::MAX` = no resolved frame needed.
        let cell_idx = if self.has_cell_emits && !self.cell_state_vars.is_empty() {
            self.state_cell_index(arena, state)
        } else {
            usize::MAX
        };
        for emit in &self.emits {
            let fire = match (&emit.cond_src, &emit.cond) {
                (None, _) => true,
                (Some(EmitSrc::Slot(slot)), _) => src
                    .get(row, *slot)
                    .as_bool()
                    .ok_or_else(|| Error::runtime("emit guard not a bool"))?,
                (Some(EmitSrc::Const(v)), _) => v
                    .as_bool()
                    .ok_or_else(|| Error::runtime("emit guard not a bool"))?,
                (Some(EmitSrc::Cell(prog)), Some(c)) => {
                    let res = prog.eval(src, row, resolved_cells(arena, cell_idx));
                    match res {
                        Some((TAG_BOOL, w)) => w != 0,
                        // Punt (or a non-bool guard value): the engine
                        // reproduces the exact value or error.
                        _ => {
                            materialize_locals(src, row, arena, &mut have_locals);
                            let frame = Frame {
                                locals: &arena.locals,
                                state,
                            };
                            c.run(&frame)?
                                .as_bool()
                                .ok_or_else(|| Error::runtime("emit guard not a bool"))?
                        }
                    }
                }
                (Some(EmitSrc::Dynamic), Some(c)) => {
                    materialize_locals(src, row, arena, &mut have_locals);
                    let frame = Frame {
                        locals: &arena.locals,
                        state,
                    };
                    c.run(&frame)?
                        .as_bool()
                        .ok_or_else(|| Error::runtime("emit guard not a bool"))?
                }
                (Some(EmitSrc::Cell(_) | EmitSrc::Dynamic), None) => {
                    unreachable!("computed cond without program")
                }
            };
            if !fire {
                continue;
            }
            let key = self.pending_cell(
                &emit.key_src,
                &emit.key,
                src,
                row,
                state,
                arena,
                cell_idx,
                &mut have_locals,
            )?;
            let val = self.pending_cell(
                &emit.val_src,
                &emit.val,
                src,
                row,
                state,
                arena,
                cell_idx,
                &mut have_locals,
            )?;
            key.commit(src, row, out);
            val.commit(src, row, out);
        }
        Ok(())
    }

    /// Index of this λ's resolved state-cell frame in `arena`, resolving
    /// it on first use. Values with no inline cell form (strings,
    /// collections, unbound names) resolve to a punt sentinel, so the
    /// per-record fallback reproduces their exact semantics.
    fn state_cell_index(&self, arena: &mut RecordArena, state: &Env) -> usize {
        let env_ptr = state as *const Env as usize;
        if let Some(i) = arena
            .state_cells
            .iter()
            .position(|e| e.owner == self.id && e.env_ptr == env_ptr)
        {
            return i;
        }
        let cells = self
            .cell_state_vars
            .iter()
            .map(|name| match state.get(name) {
                Some(Value::Int(n)) => (TAG_INT, *n as u64),
                Some(Value::Double(x)) => (TAG_DOUBLE, x.to_bits()),
                Some(Value::Bool(b)) => (TAG_BOOL, *b as u64),
                Some(Value::Unit) => (TAG_UNIT, 0),
                _ => (TAG_BOXED, 0),
            })
            .collect();
        arena.state_cells.push(StateCellEntry {
            owner: self.id,
            env_ptr,
            cells,
        });
        arena.state_cells.len() - 1
    }

    #[allow(clippy::too_many_arguments)]
    fn pending_cell<'e>(
        &self,
        src_kind: &'e EmitSrc,
        program: &ExprProgram,
        src: &ValueBuf,
        row: usize,
        state: &Env,
        arena: &mut RecordArena,
        cell_idx: usize,
        have_locals: &mut bool,
    ) -> Result<PendingCell<'e>> {
        Ok(match src_kind {
            EmitSrc::Slot(slot) => PendingCell::Copy(*slot),
            EmitSrc::Const(v) => PendingCell::Borrowed(v),
            EmitSrc::Cell(prog) => {
                let res = prog.eval(src, row, resolved_cells(arena, cell_idx));
                match res {
                    Some((tag, word)) => PendingCell::Raw(tag, word),
                    None => {
                        materialize_locals(src, row, arena, have_locals);
                        let frame = Frame {
                            locals: &arena.locals,
                            state,
                        };
                        let v = program.run(&frame)?;
                        arena.allocs += 1;
                        PendingCell::Owned(v)
                    }
                }
            }
            EmitSrc::Dynamic => {
                materialize_locals(src, row, arena, have_locals);
                let frame = Frame {
                    locals: &arena.locals,
                    state,
                };
                let v = program.run(&frame)?;
                arena.allocs += 1;
                PendingCell::Owned(v)
            }
        })
    }
}

/// The λ's resolved state-cell frame, or the empty frame when the λ's
/// cell programs read no state.
fn resolved_cells(arena: &RecordArena, cell_idx: usize) -> &[(u8, u64)] {
    if cell_idx == usize::MAX {
        &[]
    } else {
        &arena.state_cells[cell_idx].cells
    }
}

/// Materialize the record's cells into the arena frame, once per record
/// (`have_locals` latches). Counts one `Value` materialization per field.
fn materialize_locals(src: &ValueBuf, row: usize, arena: &mut RecordArena, have_locals: &mut bool) {
    if *have_locals {
        return;
    }
    arena.begin_record();
    for col in 0..src.width() {
        arena.locals.push(src.get(row, col).to_value());
    }
    arena.allocs += src.width() as u64;
    *have_locals = true;
}

/// A reduce transformer λr lowered once to a slot-resolved closure;
/// combining two values is a single direct call over a two-slot frame.
pub struct CompiledReduceLambda {
    body: ExprProgram,
    free_vars: Vec<String>,
    fast: Option<FastCombine>,
}

impl CompiledReduceLambda {
    /// Lower `lambda` with the default engine (the bytecode VM).
    pub fn compile(lambda: &ReduceLambda) -> CompiledReduceLambda {
        CompiledReduceLambda::compile_with(lambda, Engine::default())
    }

    /// Lower `lambda` for `engine`, resolving `v1`/`v2` to frame slots.
    pub fn compile_with(lambda: &ReduceLambda, engine: Engine) -> CompiledReduceLambda {
        let mut free = Vec::new();
        lambda.body.free_vars(&mut free);
        free.retain(|v| !lambda.params.iter().any(|p| p == v));
        CompiledReduceLambda {
            body: compile_reduce(lambda, engine),
            free_vars: free,
            fast: classify_fast_combine(lambda),
        }
    }

    /// State variables the λ body reads besides `v1`/`v2`.
    pub fn free_vars(&self) -> &[String] {
        &self.free_vars
    }

    /// The raw-cell combine operator this λ lowers to, when its body is a
    /// commutative-associative numeric primitive over exactly the two
    /// parameters. The buffered reducer applies it in place on inline
    /// cells; any cell pairing the fast path declines (and any λ this
    /// returns `None` for) goes through [`combine`](Self::combine), so
    /// value and error semantics are unchanged.
    pub fn fast_combine(&self) -> Option<FastCombine> {
        self.fast
    }

    /// Combine two values.
    pub fn combine(&self, v1: Value, v2: Value, state: &Env) -> Result<Value> {
        let locals = [v1, v2];
        let frame = Frame {
            locals: &locals,
            state,
        };
        self.body.run(&frame)
    }
}

/// A compiled MR pipeline stage.
enum Stage {
    Data(DataSource),
    Map {
        inner: Box<Stage>,
        lambda: CompiledMapLambda,
    },
    Reduce {
        inner: Box<Stage>,
        lambda: CompiledReduceLambda,
    },
    Join {
        left: Box<Stage>,
        right: Box<Stage>,
    },
}

/// A single MR pipeline expression lowered to slot-resolved closures,
/// evaluatable to its key/value multiset against any program state —
/// the compiled counterpart of [`crate::eval::EvalCtx::eval_mr`]. The
/// verifier uses this to harvest the concrete values entering each
/// reduce stage without tree-walking the sub-pipeline per state.
pub struct CompiledMrExpr {
    stage: Stage,
}

impl CompiledMrExpr {
    /// Lower `expr` once with the default engine (the bytecode VM).
    pub fn compile(expr: &MrExpr) -> CompiledMrExpr {
        CompiledMrExpr::compile_with(expr, Engine::default())
    }

    /// Lower `expr` once for `engine`.
    pub fn compile_with(expr: &MrExpr, engine: Engine) -> CompiledMrExpr {
        CompiledMrExpr {
            stage: compile_stage(expr, engine),
        }
    }

    /// Evaluate to the pipeline's record multiset — behaviourally
    /// identical to the tree-walking `eval_mr` on the source expression.
    pub fn eval(&self, state: &Env) -> Result<Vec<Vec<Value>>> {
        run_stage(&self.stage, state)
    }
}

/// A program summary lowered to slot-resolved closures, evaluatable
/// against any program state. See the [module docs](self) for an example.
pub struct CompiledSummary {
    bindings: Vec<CompiledBinding>,
}

struct CompiledBinding {
    vars: Vec<String>,
    kind: OutputKind,
    stage: Stage,
}

impl CompiledSummary {
    /// Lower every binding of `summary` with the default engine (the
    /// bytecode VM).
    pub fn compile(summary: &ProgramSummary) -> CompiledSummary {
        CompiledSummary::compile_with(summary, Engine::default())
    }

    /// Lower every binding of `summary` for `engine`.
    pub fn compile_with(summary: &ProgramSummary, engine: Engine) -> CompiledSummary {
        CompiledSummary {
            bindings: summary
                .bindings
                .iter()
                .map(|b| CompiledBinding {
                    vars: b.vars.clone(),
                    kind: b.kind.clone(),
                    stage: compile_stage(&b.expr, engine),
                })
                .collect(),
        }
    }

    /// Evaluate against a concrete pre-loop state, returning the computed
    /// outputs — behaviourally identical to [`crate::eval::eval_summary`]
    /// on the summary this was compiled from.
    pub fn eval(&self, state: &Env) -> Result<Env> {
        let mut out = Env::new();
        for binding in &self.bindings {
            let rows = run_stage(&binding.stage, state)?;
            reconstruct_output(state, &binding.vars, &binding.kind, &rows, &mut out)?;
        }
        Ok(out)
    }
}

fn compile_stage(expr: &MrExpr, engine: Engine) -> Stage {
    match expr {
        MrExpr::Data(src) => Stage::Data(src.clone()),
        MrExpr::Map(inner, lambda) => Stage::Map {
            inner: Box::new(compile_stage(inner, engine)),
            lambda: CompiledMapLambda::compile_with(lambda, engine),
        },
        MrExpr::Reduce(inner, lambda) => Stage::Reduce {
            inner: Box::new(compile_stage(inner, engine)),
            lambda: CompiledReduceLambda::compile_with(lambda, engine),
        },
        MrExpr::Join(l, r) => Stage::Join {
            left: Box::new(compile_stage(l, engine)),
            right: Box::new(compile_stage(r, engine)),
        },
    }
}

fn compile_map(lambda: &MapLambda, engine: Engine) -> (Vec<CompiledEmit>, Vec<String>) {
    let mut state_vars = Vec::new();
    let emits = lambda
        .emits
        .iter()
        .map(|emit| CompiledEmit {
            cond: emit
                .cond
                .as_ref()
                .map(|c| ExprProgram::compile(c, &lambda.params, engine)),
            cond_src: emit
                .cond
                .as_ref()
                .map(|c| EmitSrc::classify_cell(c, &lambda.params, &mut state_vars)),
            key: ExprProgram::compile(&emit.key, &lambda.params, engine),
            key_src: EmitSrc::classify_cell(&emit.key, &lambda.params, &mut state_vars),
            val: ExprProgram::compile(&emit.val, &lambda.params, engine),
            val_src: EmitSrc::classify_cell(&emit.val, &lambda.params, &mut state_vars),
        })
        .collect();
    (emits, state_vars)
}

fn compile_reduce(lambda: &ReduceLambda, engine: Engine) -> ExprProgram {
    ExprProgram::compile(&lambda.body, &lambda.params, engine)
}

/// Recognise reduce bodies of the shape `v1 ⊕ v2` (`+`, `-`, `*`) or
/// `min(v1, v2)` / `max(v1, v2)` — the exact parameter order matters for
/// `-`. These are the only bodies whose semantics [`FastCombine`]
/// reproduces bit-for-bit on inline numeric cells (wrapping `Int`
/// arithmetic, `Double` promotion, Rust `min`/`max`); `/` and `%` are
/// excluded because they carry error paths.
fn classify_fast_combine(lambda: &ReduceLambda) -> Option<FastCombine> {
    let slot = |e: &IrExpr| match e {
        IrExpr::Var(name) => lambda.params.iter().rposition(|p| p == name),
        _ => None,
    };
    match &lambda.body {
        IrExpr::Bin(op, l, r) if slot(l) == Some(0) && slot(r) == Some(1) => match op {
            BinOp::Add => Some(FastCombine::Add),
            BinOp::Sub => Some(FastCombine::Sub),
            BinOp::Mul => Some(FastCombine::Mul),
            _ => None,
        },
        IrExpr::Call(name, args)
            if args.len() == 2 && slot(&args[0]) == Some(0) && slot(&args[1]) == Some(1) =>
        {
            match name.as_str() {
                "min" => Some(FastCombine::Min),
                "max" => Some(FastCombine::Max),
                _ => None,
            }
        }
        _ => None,
    }
}

fn run_stage(stage: &Stage, state: &Env) -> Result<Vec<Row>> {
    match stage {
        Stage::Data(src) => eval_data(state, src),
        Stage::Map { inner, lambda } => {
            let input = run_stage(inner, state)?;
            let mut out = Vec::with_capacity(input.len());
            let mut pairs = Vec::new();
            for row in &input {
                pairs.clear();
                lambda.apply_into(row, state, &mut pairs)?;
                for (k, v) in pairs.drain(..) {
                    out.push(vec![k, v]);
                }
            }
            Ok(out)
        }
        Stage::Reduce { inner, lambda } => {
            let input = run_stage(inner, state)?;
            let groups = group_by_key(&input)?;
            let mut out = Vec::with_capacity(groups.len());
            for (k, vals) in groups {
                let mut acc = vals[0].clone();
                for v in &vals[1..] {
                    acc = lambda.combine(acc, v.clone(), state)?;
                }
                out.push(vec![k, acc]);
            }
            Ok(out)
        }
        Stage::Join { left, right } => {
            let l = run_stage(left, state)?;
            let r = run_stage(right, state)?;
            eval_join(&l, &r)
        }
    }
}

/// Compile one expression over the λ-parameter namespace `params`:
/// parameter references become slot reads, everything else becomes a
/// state lookup — the same shadowing the tree-walking evaluator gets by
/// overwriting a cloned state env with the parameter values.
fn compile_expr<P: AsRef<str>>(e: &IrExpr, params: &[P]) -> ExprFn {
    match e {
        IrExpr::ConstInt(n) => {
            let n = *n;
            Box::new(move |_| Ok(Value::Int(n)))
        }
        IrExpr::ConstDouble(x) => {
            let x = x.0;
            Box::new(move |_| Ok(Value::Double(x)))
        }
        IrExpr::ConstBool(b) => {
            let b = *b;
            Box::new(move |_| Ok(Value::Bool(b)))
        }
        IrExpr::ConstStr(s) => {
            let v = Value::str(s.as_str());
            Box::new(move |_| Ok(v.clone()))
        }
        IrExpr::Var(name) => {
            // `rposition`: the LAST binding of a name wins, matching the
            // tree-walking evaluator's env-overwrite shadowing (relevant
            // when an `Agg` element binder shadows an outer parameter).
            if let Some(slot) = params.iter().rposition(|p| p.as_ref() == name) {
                Box::new(move |f| Ok(f.locals[slot].clone()))
            } else {
                let name = name.clone();
                Box::new(move |f| {
                    f.state
                        .get(&name)
                        .cloned()
                        .ok_or_else(|| Error::runtime(format!("IR: unbound variable `{name}`")))
                })
            }
        }
        IrExpr::Field(base, field) => {
            let base = compile_expr(base, params);
            let field = field.clone();
            Box::new(move |f| {
                let b = base(f)?;
                b.field(&field)
                    .cloned()
                    .ok_or_else(|| Error::runtime(format!("IR: no field `{field}` on {b}")))
            })
        }
        IrExpr::TupleGet(base, i) => {
            let base = compile_expr(base, params);
            let i = *i;
            Box::new(move |f| {
                let b = base(f)?;
                b.tuple_get(i)
                    .cloned()
                    .ok_or_else(|| Error::runtime(format!("IR: tuple index {i} on {b}")))
            })
        }
        IrExpr::Tuple(es) => {
            let parts: Vec<ExprFn> = es.iter().map(|x| compile_expr(x, params)).collect();
            Box::new(move |f| {
                let mut vals = Vec::with_capacity(parts.len());
                for p in &parts {
                    vals.push(p(f)?);
                }
                Ok(Value::Tuple(vals))
            })
        }
        IrExpr::Bin(op, l, r) => {
            let lc = compile_expr(l, params);
            let rc = compile_expr(r, params);
            match op {
                // Short-circuit like the source language (and exactly like
                // the tree-walking evaluator, including its tolerance for
                // non-boolean left operands).
                BinOp::And => Box::new(move |f| {
                    if lc(f)?.as_bool() != Some(true) {
                        return Ok(Value::Bool(false));
                    }
                    rc(f)
                }),
                BinOp::Or => Box::new(move |f| {
                    if lc(f)?.as_bool() == Some(true) {
                        return Ok(Value::Bool(true));
                    }
                    rc(f)
                }),
                op => {
                    let op = *op;
                    Box::new(move |f| eval_binop(op, lc(f)?, rc(f)?))
                }
            }
        }
        IrExpr::Un(op, inner) => {
            let ic = compile_expr(inner, params);
            let op = *op;
            Box::new(move |f| {
                let v = ic(f)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(n.wrapping_neg())),
                    (UnOp::Neg, Value::Double(x)) => Ok(Value::Double(-x)),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (UnOp::BitNot, Value::Int(n)) => Ok(Value::Int(!n)),
                    (op, v) => Err(Error::runtime(format!("IR: bad unary {op:?} on {v}"))),
                }
            })
        }
        IrExpr::Call(name, args) => {
            let argc: Vec<ExprFn> = args.iter().map(|a| compile_expr(a, params)).collect();
            let name = name.clone();
            Box::new(move |f| {
                let mut vals = Vec::with_capacity(argc.len());
                for a in &argc {
                    vals.push(a(f)?);
                }
                eval_free_function(&name, &vals)
            })
        }
        IrExpr::Method(base, name, args) => {
            let base = compile_expr(base, params);
            let argc: Vec<ExprFn> = args.iter().map(|a| compile_expr(a, params)).collect();
            let name = name.clone();
            Box::new(move |f| {
                let b = base(f)?;
                let mut vals = Vec::with_capacity(argc.len());
                for a in &argc {
                    vals.push(a(f)?);
                }
                eval_pure_method(&b, &name, &vals)
            })
        }
        IrExpr::If(c, t, e2) => {
            let cc = compile_expr(c, params);
            let tc = compile_expr(t, params);
            let ec = compile_expr(e2, params);
            Box::new(move |f| {
                let cond = cc(f)?
                    .as_bool()
                    .ok_or_else(|| Error::runtime("IR: non-bool condition"))?;
                if cond {
                    tc(f)
                } else {
                    ec(f)
                }
            })
        }
        IrExpr::Agg {
            op,
            init,
            over,
            param,
            body,
        } => {
            let op = *op;
            let initc = compile_expr(init, params);
            // The body sees the outer parameters plus the element binder
            // appended last; rposition-resolution makes the binder shadow
            // a same-named outer parameter, like the tree walk's env
            // overwrite.
            let mut body_params: Vec<String> =
                params.iter().map(|p| p.as_ref().to_string()).collect();
            body_params.push(param.clone());
            let bodyc = compile_expr(body, &body_params);
            let over_slot = params.iter().rposition(|p| p.as_ref() == over.as_str());
            let over = over.clone();
            Box::new(move |f| {
                let mut acc = initc(f)?;
                let coll =
                    match over_slot {
                        Some(slot) => f.locals[slot].clone(),
                        None => f.state.get(&over).cloned().ok_or_else(|| {
                            Error::runtime(format!("IR: unbound variable `{over}`"))
                        })?,
                    };
                let elems = coll
                    .elements()
                    .ok_or_else(|| Error::runtime(format!("`{over}` is not a collection")))?;
                let mut locals2 = f.locals.to_vec();
                locals2.push(Value::Int(0));
                for e in elems {
                    *locals2.last_mut().expect("element slot") = e.clone();
                    let frame = Frame {
                        locals: &locals2,
                        state: f.state,
                    };
                    let v = bodyc(&frame)?;
                    acc = op.combine(acc, v)?;
                }
                Ok(acc)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_summary;
    use crate::lambda::Emit;
    use crate::mr::OutputBinding;
    use seqlang::ty::Type;

    fn state(pairs: &[(&str, Value)]) -> Env {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Compiled evaluation — under BOTH engines — must agree exactly with
    /// the tree walk, including on error outcomes and error identity.
    fn assert_agrees(summary: &ProgramSummary, st: &Env) {
        for engine in [Engine::Bytecode, Engine::ClosureTree] {
            let compiled = CompiledSummary::compile_with(summary, engine);
            match (eval_summary(summary, st), compiled.eval(st)) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "outputs diverge ({})", engine.name()),
                (Err(a), Err(b)) => assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "error identity diverges ({})",
                    engine.name()
                ),
                (a, b) => panic!(
                    "agreement broken ({}): tree-walk {a:?} vs compiled {b:?}",
                    engine.name()
                ),
            }
        }
    }

    fn sum_summary() -> ProgramSummary {
        let m = MapLambda::new(
            vec!["v"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("v"))],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        ProgramSummary::single("s", expr, OutputKind::Scalar)
    }

    #[test]
    fn compiled_sum_matches_tree_walk() {
        let st = state(&[
            (
                "xs",
                Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            ),
            ("s", Value::Int(0)),
        ]);
        assert_agrees(&sum_summary(), &st);
        let empty = state(&[("xs", Value::List(vec![])), ("s", Value::Int(17))]);
        assert_agrees(&sum_summary(), &empty);
    }

    #[test]
    fn compiled_three_stage_pipeline_with_free_vars() {
        // Row-wise mean: the final map divides by the free variable `cols`.
        let m1 = MapLambda::new(
            vec!["i", "j", "v"],
            vec![Emit::unconditional(IrExpr::var("i"), IrExpr::var("v"))],
        );
        let m2 = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::unconditional(
                IrExpr::var("k"),
                IrExpr::bin(BinOp::Div, IrExpr::var("v"), IrExpr::var("cols")),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed_2d("mat", Type::Int))
            .map(m1)
            .reduce(ReduceLambda::binop(BinOp::Add))
            .map(m2);
        let summary = ProgramSummary::single(
            "m",
            expr,
            OutputKind::AssocArray {
                len_var: "rows".into(),
            },
        );
        let st = state(&[
            (
                "mat",
                Value::Array(vec![
                    Value::Array(vec![Value::Int(1), Value::Int(3)]),
                    Value::Array(vec![Value::Int(10), Value::Int(20)]),
                ]),
            ),
            ("rows", Value::Int(2)),
            ("cols", Value::Int(2)),
            ("m", Value::Array(vec![Value::Int(0), Value::Int(0)])),
        ]);
        assert_agrees(&summary, &st);
        let out = CompiledSummary::compile(&summary).eval(&st).unwrap();
        assert_eq!(
            out.get("m"),
            Some(&Value::Array(vec![Value::Int(2), Value::Int(15)]))
        );
    }

    #[test]
    fn compiled_guarded_emits_and_join() {
        // dot product over joined indexed sources with a guard.
        let m = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::guarded(
                IrExpr::bin(BinOp::Gt, IrExpr::tget(IrExpr::var("v"), 0), IrExpr::int(0)),
                IrExpr::int(0),
                IrExpr::bin(
                    BinOp::Mul,
                    IrExpr::tget(IrExpr::var("v"), 0),
                    IrExpr::tget(IrExpr::var("v"), 1),
                ),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed("xs", Type::Int))
            .join(MrExpr::Data(DataSource::indexed("ys", Type::Int)))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        let summary = ProgramSummary::single("dot", expr, OutputKind::Scalar);
        let st = state(&[
            (
                "xs",
                Value::Array(vec![Value::Int(-1), Value::Int(2), Value::Int(3)]),
            ),
            (
                "ys",
                Value::Array(vec![Value::Int(5), Value::Int(6), Value::Int(7)]),
            ),
            ("dot", Value::Int(0)),
        ]);
        assert_agrees(&summary, &st);
    }

    #[test]
    fn compiled_scalar_tuple_and_shadowing() {
        // A λ parameter named like a state variable must shadow it.
        let m = MapLambda::new(
            vec!["key1"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::Tuple(vec![
                    IrExpr::bin(BinOp::Eq, IrExpr::var("key1"), IrExpr::var("needle")),
                    IrExpr::ConstBool(false),
                ]),
            )],
        );
        let r = ReduceLambda::new(IrExpr::Tuple(vec![
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 0),
                IrExpr::tget(IrExpr::var("v2"), 0),
            ),
            IrExpr::bin(
                BinOp::Or,
                IrExpr::tget(IrExpr::var("v1"), 1),
                IrExpr::tget(IrExpr::var("v2"), 1),
            ),
        ]));
        let expr = MrExpr::Data(DataSource::flat("text", Type::Str))
            .map(m)
            .reduce(r);
        let summary = ProgramSummary {
            bindings: vec![OutputBinding {
                vars: vec!["f1".into(), "f2".into()],
                expr,
                kind: OutputKind::ScalarTuple,
            }],
        };
        let st = state(&[
            (
                "text",
                Value::List(vec![Value::str("a"), Value::str("cat")]),
            ),
            ("key1", Value::str("decoy")),
            ("needle", Value::str("cat")),
            ("f1", Value::Bool(false)),
            ("f2", Value::Bool(false)),
        ]);
        assert_agrees(&summary, &st);
        let out = CompiledSummary::compile(&summary).eval(&st).unwrap();
        assert_eq!(out.get("f1"), Some(&Value::Bool(true)));
    }

    #[test]
    fn compiled_errors_match_tree_walk_errors() {
        // Division by a zero-valued free variable faults both evaluators.
        let m = MapLambda::new(
            vec!["v"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::bin(BinOp::Div, IrExpr::var("v"), IrExpr::var("z")),
            )],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        let summary = ProgramSummary::single("s", expr, OutputKind::Scalar);
        let st = state(&[
            ("xs", Value::List(vec![Value::Int(1)])),
            ("z", Value::Int(0)),
            ("s", Value::Int(0)),
        ]);
        assert_agrees(&summary, &st);
        assert!(CompiledSummary::compile(&summary).eval(&st).is_err());
        // Unbound variables error in both too.
        let st2 = state(&[
            ("xs", Value::List(vec![Value::Int(1)])),
            ("s", Value::Int(0)),
        ]);
        assert_agrees(&summary, &st2);
    }

    #[test]
    fn compiled_mr_expr_matches_tree_walk_rows() {
        // The sub-pipeline feeding the reduce, evaluated standalone.
        let summary = sum_summary();
        let MrExpr::Reduce(inner, _) = &summary.bindings[0].expr else {
            panic!("sum summary ends in a reduce");
        };
        let st = state(&[
            (
                "xs",
                Value::List(vec![Value::Int(4), Value::Int(7), Value::Int(-2)]),
            ),
            ("s", Value::Int(0)),
        ]);
        let compiled = CompiledMrExpr::compile(inner);
        let rows = compiled.eval(&st).unwrap();
        let reference = crate::eval::EvalCtx::new(&st).eval_mr(inner).unwrap();
        assert_eq!(rows, reference);
        // Errors propagate identically too.
        let missing = state(&[("s", Value::Int(0))]);
        assert!(compiled.eval(&missing).is_err());
        assert!(crate::eval::EvalCtx::new(&missing).eval_mr(inner).is_err());
    }

    #[test]
    fn buffered_apply_matches_boxed_apply() {
        // One guarded dynamic emit, one slot/const emit: exercises the
        // Dynamic EmitSrc kind plus guard evaluation from a cell. The
        // `abs` call keeps guard and value off the raw-cell path.
        let lambda = MapLambda::new(
            vec!["k", "v"],
            vec![
                Emit::guarded(
                    IrExpr::bin(
                        BinOp::Gt,
                        IrExpr::Call("abs".into(), vec![IrExpr::var("v")]),
                        IrExpr::var("cut"),
                    ),
                    IrExpr::var("k"),
                    IrExpr::Call("abs".into(), vec![IrExpr::var("v")]),
                ),
                Emit::unconditional(IrExpr::ConstStr("tag".into()), IrExpr::var("v")),
            ],
        );
        let compiled = CompiledMapLambda::compile(&lambda);
        let st = state(&[("cut", Value::Int(1))]);

        let rows = vec![
            vec![Value::str("a"), Value::Int(3)],
            vec![Value::str("b"), Value::Int(0)],
            vec![Value::str("c"), Value::Int(9)],
        ];
        let mut src = ValueBuf::new(2);
        for r in &rows {
            src.push_row(r);
        }

        let mut boxed = Vec::new();
        for r in &rows {
            compiled.apply_into(r, &st, &mut boxed).unwrap();
        }
        let mut out = ValueBuf::new(2);
        let mut arena = RecordArena::new();
        for row in 0..src.len() {
            compiled
                .apply_into_buf(&src, row, &st, &mut out, &mut arena)
                .unwrap();
        }
        let buffered: Vec<(Value, Value)> = (0..out.len())
            .map(|i| (out.value_at(i, 0), out.value_at(i, 1)))
            .collect();
        assert_eq!(boxed, buffered);
        // Dynamic guard + dynamic val force locals materialization and one
        // boxed temporary per fired dynamic emit.
        assert!(arena.allocs > 0);

        // Arity mismatch errors identically.
        let narrow = {
            let mut b = ValueBuf::new(1);
            b.push_row(&[Value::Int(1)]);
            b
        };
        let buf_err = compiled
            .apply_into_buf(&narrow, 0, &st, &mut out, &mut arena)
            .unwrap_err();
        let boxed_err = compiled
            .apply_into(&[Value::Int(1)], &st, &mut boxed)
            .unwrap_err();
        assert_eq!(buf_err.to_string(), boxed_err.to_string());

        // Non-bool guards error identically too.
        let bad = MapLambda::new(
            vec!["v"],
            vec![Emit::guarded(
                IrExpr::var("v"),
                IrExpr::int(0),
                IrExpr::var("v"),
            )],
        );
        let bad_c = CompiledMapLambda::compile(&bad);
        let mut one = ValueBuf::new(1);
        one.push_row(&[Value::Int(7)]);
        let e1 = bad_c
            .apply_into(&[Value::Int(7)], &st, &mut boxed)
            .unwrap_err();
        let e2 = bad_c
            .apply_into_buf(&one, 0, &st, &mut out, &mut arena)
            .unwrap_err();
        assert_eq!(e1.to_string(), e2.to_string());
    }

    #[test]
    fn cell_program_emits_match_boxed_and_stay_raw() {
        // Guard, key, and value all lower to raw-cell programs: the guard
        // compares a Double slot against a Double state scalar, the key
        // is an Int modulo, the value promotes Int·Double — the
        // tpch_q6/map_chain shapes.
        let lambda = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::guarded(
                IrExpr::bin(BinOp::Gt, IrExpr::var("v"), IrExpr::var("cut")),
                IrExpr::bin(BinOp::Mod, IrExpr::var("k"), IrExpr::int(4)),
                IrExpr::bin(BinOp::Mul, IrExpr::var("v"), IrExpr::var("rate")),
            )],
        );
        let compiled = CompiledMapLambda::compile(&lambda);
        let st = state(&[("cut", Value::Double(1.5)), ("rate", Value::Double(0.25))]);
        let rows: Vec<Vec<Value>> = (0..8)
            .map(|i| vec![Value::Int(i), Value::Double(i as f64 * 0.7)])
            .collect();
        let mut src = ValueBuf::new(2);
        for r in &rows {
            src.push_row(r);
        }
        let mut boxed = Vec::new();
        for r in &rows {
            compiled.apply_into(r, &st, &mut boxed).unwrap();
        }
        let mut out = ValueBuf::new(2);
        let mut arena = RecordArena::new();
        for row in 0..src.len() {
            compiled
                .apply_into_buf(&src, row, &st, &mut out, &mut arena)
                .unwrap();
        }
        let buffered: Vec<(Value, Value)> = (0..out.len())
            .map(|i| (out.value_at(i, 0), out.value_at(i, 1)))
            .collect();
        assert_eq!(boxed, buffered);
        assert!(!boxed.is_empty());
        // The whole pass stayed in the raw (tag, word) regime.
        assert_eq!(arena.allocs, 0);
    }

    #[test]
    fn cell_program_punts_on_errors_and_non_inline_operands() {
        // v / z: the raw-cell path must punt on z = 0 so the engine
        // raises the exact division error the boxed path raises.
        let div = MapLambda::new(
            vec!["v"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::bin(BinOp::Div, IrExpr::var("v"), IrExpr::var("z")),
            )],
        );
        let c = CompiledMapLambda::compile(&div);
        let mut one = ValueBuf::new(1);
        one.push_row(&[Value::Int(7)]);
        let mut out = ValueBuf::new(2);
        let mut boxed = Vec::new();

        let zero = state(&[("z", Value::Int(0))]);
        let mut arena = RecordArena::new();
        let e1 = c
            .apply_into(&[Value::Int(7)], &zero, &mut boxed)
            .unwrap_err();
        let e2 = c
            .apply_into_buf(&one, 0, &zero, &mut out, &mut arena)
            .unwrap_err();
        assert_eq!(e1.to_string(), e2.to_string());

        // A string-valued state operand punts per record; the type error
        // is identical either way.
        let strst = state(&[("z", Value::str("nope"))]);
        let mut arena2 = RecordArena::new();
        let e3 = c
            .apply_into(&[Value::Int(7)], &strst, &mut boxed)
            .unwrap_err();
        let e4 = c
            .apply_into_buf(&one, 0, &strst, &mut out, &mut arena2)
            .unwrap_err();
        assert_eq!(e3.to_string(), e4.to_string());

        // Nonzero divisor: the raw path engages with an identical
        // quotient and zero materializations.
        let two = state(&[("z", Value::Int(2))]);
        let mut arena3 = RecordArena::new();
        boxed.clear();
        c.apply_into(&[Value::Int(7)], &two, &mut boxed).unwrap();
        let mut out2 = ValueBuf::new(2);
        c.apply_into_buf(&one, 0, &two, &mut out2, &mut arena3)
            .unwrap();
        assert_eq!(boxed[0].1, out2.value_at(0, 1));
        assert_eq!(arena3.allocs, 0);
    }

    #[test]
    fn fast_combine_classification() {
        let fast = |r: &ReduceLambda| CompiledReduceLambda::compile(r).fast_combine();
        assert_eq!(
            fast(&ReduceLambda::binop(BinOp::Add)),
            Some(FastCombine::Add)
        );
        assert_eq!(
            fast(&ReduceLambda::binop(BinOp::Sub)),
            Some(FastCombine::Sub)
        );
        assert_eq!(
            fast(&ReduceLambda::binop(BinOp::Mul)),
            Some(FastCombine::Mul)
        );
        // Division has an error path; never fast.
        assert_eq!(fast(&ReduceLambda::binop(BinOp::Div)), None);
        let minl = ReduceLambda::new(IrExpr::Call(
            "min".into(),
            vec![IrExpr::var("v1"), IrExpr::var("v2")],
        ));
        assert_eq!(fast(&minl), Some(FastCombine::Min));
        // Swapped parameter order must not classify (Sub is not commutative).
        let swapped = ReduceLambda::new(IrExpr::bin(
            BinOp::Sub,
            IrExpr::var("v2"),
            IrExpr::var("v1"),
        ));
        assert_eq!(fast(&swapped), None);
        // A body with free state variables is not a raw-cell combine.
        let with_free = ReduceLambda::new(IrExpr::bin(
            BinOp::Add,
            IrExpr::var("v1"),
            IrExpr::var("bias"),
        ));
        assert_eq!(fast(&with_free), None);
    }

    #[test]
    fn short_circuit_skips_faulting_operand() {
        let m = MapLambda::new(
            vec!["v"],
            vec![Emit::guarded(
                IrExpr::bin(
                    BinOp::And,
                    IrExpr::ConstBool(false),
                    IrExpr::bin(
                        BinOp::Gt,
                        IrExpr::bin(BinOp::Div, IrExpr::int(1), IrExpr::int(0)),
                        IrExpr::int(0),
                    ),
                ),
                IrExpr::int(0),
                IrExpr::var("v"),
            )],
        );
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int)).map(m);
        let summary = ProgramSummary::single("out", expr, OutputKind::CollectedList);
        let st = state(&[
            ("xs", Value::List(vec![Value::Int(1), Value::Int(2)])),
            ("out", Value::List(vec![])),
        ]);
        assert_agrees(&summary, &st);
        let out = CompiledSummary::compile(&summary).eval(&st).unwrap();
        assert_eq!(out.get("out"), Some(&Value::List(vec![])));
    }
}
