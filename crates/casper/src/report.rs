//! Translation reports: everything the evaluation tables read off.

use std::time::Duration;

use analyzer::fragment::FragmentFeatures;
use casper_ir::mr::ProgramSummary;
use codegen::{Dialect, GeneratedProgram};
use synthesis::SearchReport;

/// The verdict-cache hit ratio `hits / (hits + misses)`, `0.0` when no
/// verifications ran — the single formula every report level and the
/// bench harness share.
pub fn hit_ratio(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        return 0.0;
    }
    hits as f64 / total as f64
}

/// Why a fragment failed to translate (§7.1's failure taxonomy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// Loops inside transformer functions / derived inner iteration.
    InnerDataLoop,
    /// Library methods without IR models.
    UnmodeledMethod,
    /// Search space exhausted without a verified summary.
    SearchExhausted,
    /// Synthesis hit the time budget (the paper's 90-minute timeouts).
    Timeout,
}

impl FailureReason {
    pub fn describe(&self) -> &'static str {
        match self {
            FailureReason::InnerDataLoop => {
                "requires loops inside transformer functions (inexpressible in IR)"
            }
            FailureReason::UnmodeledMethod => "uses library methods with no IR model",
            FailureReason::SearchExhausted => "no verified summary in the search space",
            FailureReason::Timeout => "synthesis timed out",
        }
    }
}

/// The result of translating one fragment.
pub enum FragmentOutcome {
    Translated {
        /// All verified summaries, cheapest first (post static pruning).
        summaries: Vec<ProgramSummary>,
        /// The runnable program: variants + runtime monitor.
        program: GeneratedProgram,
        /// Generated target code for the configured dialect.
        code: String,
        dialect: Dialect,
    },
    Failed(FailureReason),
}

impl FragmentOutcome {
    pub fn is_translated(&self) -> bool {
        matches!(self, FragmentOutcome::Translated { .. })
    }
}

/// Per-fragment report.
pub struct FragmentReport {
    pub id: String,
    pub func: String,
    /// Fragment LOC (Table 2).
    pub loc: usize,
    pub features: FragmentFeatures,
    pub outcome: FragmentOutcome,
    /// Search statistics (candidates, TP failures, time — Tables 2/3).
    pub search: SearchReport,
    /// Wall-clock compile time for this fragment.
    pub compile_time: Duration,
    /// Time spent lowering verified summaries into fused, slot-resolved
    /// execution plans (`CompiledPlan::new` across all variants) — the
    /// plan-compile share of [`compile_time`], paid once so that every
    /// subsequent execution runs closure-per-record.
    ///
    /// [`compile_time`]: FragmentReport::compile_time
    pub plan_compile_time: Duration,
    /// Wall-clock time this fragment spent in full verification — every
    /// candidate the search sent over plus the property-harvesting
    /// re-verifications (verdict-cache lookups).
    pub verify_wall: Duration,
    /// CPU time of full verification: serial wall plus the summed busy
    /// time of the verifier's state-checking workers. Equals
    /// [`verify_wall`] at `verify.parallelism = 1`.
    ///
    /// [`verify_wall`]: FragmentReport::verify_wall
    pub verify_cpu: Duration,
    /// Verifications served from the per-fragment verdict cache.
    pub verdict_cache_hits: u64,
    /// Verifications that ran in full (cache misses).
    pub verdict_cache_misses: u64,
    /// Aggregate CPU time for this fragment: the wall-clock of its
    /// sequential phases plus the summed busy time of the search's
    /// screening workers. At `parallelism = 1` this equals
    /// `compile_time`; the gap between the two is what the parallel
    /// driver bought.
    pub cpu_time: Duration,
    /// Label of the candidate-evaluation engine the search and verifier
    /// ran on (`"bytecode"` by default, `"closure-tree"` for the
    /// differential-reference ablation) — the per-engine time split pairs
    /// this with [`screen_wall`] / [`verify_wall`].
    ///
    /// [`screen_wall`]: FragmentReport::screen_wall
    /// [`verify_wall`]: FragmentReport::verify_wall
    pub engine: &'static str,
    /// Wall-clock the search spent screening candidates on the engine —
    /// the search's elapsed time minus the share it spent waiting on full
    /// verification. Together with [`verify_wall`] this splits the hot
    /// evaluation time by consumer.
    ///
    /// [`verify_wall`]: FragmentReport::verify_wall
    pub screen_wall: Duration,
    /// Label of the pool the fragment's parallel phases ran on
    /// (`"persistent"` or `"scoped-legacy"`).
    pub runtime_mode: &'static str,
    /// Persistent-executor counter deltas observed while this fragment
    /// translated: helper tasks submitted, steals, queue-depth
    /// high-water mark, pool-worker busy time. Zero under the serial
    /// path and the scoped-legacy ablation (neither touches the
    /// executor). When fragments translate concurrently the deltas
    /// overlap — they attribute *pool* activity to the fragment's time
    /// window, not exclusively to its own tasks.
    pub runtime_stats: casper_runtime::ExecutorStats,
}

impl FragmentReport {
    /// Assemble a report, deriving [`cpu_time`] from the search's CPU
    /// accounting plus the sequential (non-search) share of the wall
    /// clock.
    ///
    /// [`cpu_time`]: FragmentReport::cpu_time
    pub fn new(
        fragment: &analyzer::fragment::Fragment,
        outcome: FragmentOutcome,
        search: SearchReport,
        compile_time: Duration,
    ) -> FragmentReport {
        let cpu_time = search.cpu_time + compile_time.saturating_sub(search.elapsed);
        let screen_wall = search.elapsed.saturating_sub(search.verify_wall);
        FragmentReport {
            id: fragment.id.clone(),
            func: fragment.func.clone(),
            loc: fragment.loc,
            features: fragment.features,
            outcome,
            search,
            compile_time,
            plan_compile_time: Duration::ZERO,
            verify_wall: Duration::ZERO,
            verify_cpu: Duration::ZERO,
            verdict_cache_hits: 0,
            verdict_cache_misses: 0,
            cpu_time,
            engine: casper_ir::Engine::default().name(),
            screen_wall,
            runtime_mode: casper_runtime::RuntimeMode::default().name(),
            runtime_stats: casper_runtime::ExecutorStats::default(),
        }
    }

    /// Fraction of this fragment's verifications the verdict cache
    /// absorbed.
    pub fn verdict_cache_hit_ratio(&self) -> f64 {
        hit_ratio(self.verdict_cache_hits, self.verdict_cache_misses)
    }
    /// MapReduce operator count of the best summary (Table 2's "# Op").
    pub fn op_count(&self) -> usize {
        match &self.outcome {
            FragmentOutcome::Translated { summaries, .. } => {
                summaries.first().map(|s| s.op_count()).unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// Generated-code LOC (Table 2's LOC for the translation).
    pub fn generated_loc(&self) -> usize {
        match &self.outcome {
            FragmentOutcome::Translated { code, .. } => codegen::emit::code_loc(code),
            _ => 0,
        }
    }
}

/// Whole-program translation report.
pub struct TranslationReport {
    pub fragments: Vec<FragmentReport>,
    /// End-to-end wall clock for the whole translation, including
    /// parsing and fragment identification. With fragment-level
    /// parallelism this is less than [`total_compile_time`], which sums
    /// per-fragment wall clocks.
    ///
    /// [`total_compile_time`]: TranslationReport::total_compile_time
    pub wall_time: Duration,
    /// Label of the pool the translation's parallel phases ran on
    /// (`"persistent"` or `"scoped-legacy"`).
    pub runtime_mode: &'static str,
    /// Persistent-executor counter deltas across the whole translation —
    /// the per-suite runtime ledger `table1` prints. Zero under the
    /// serial path and the scoped-legacy ablation.
    pub runtime_stats: casper_runtime::ExecutorStats,
}

impl TranslationReport {
    pub fn identified_count(&self) -> usize {
        self.fragments.len()
    }

    pub fn translated_count(&self) -> usize {
        self.fragments
            .iter()
            .filter(|f| f.outcome.is_translated())
            .count()
    }

    pub fn total_tp_failures(&self) -> u64 {
        self.fragments
            .iter()
            .map(|f| f.search.verifier_rejections)
            .sum()
    }

    /// Candidates the enumerator streamed into screening across all
    /// fragments (post blocked-set filtering, pre dedup).
    pub fn total_generated(&self) -> u64 {
        self.fragments
            .iter()
            .map(|f| f.search.candidates_generated)
            .sum()
    }

    /// Candidates absorbed by observational-equivalence dedup across all
    /// fragments.
    pub fn total_deduped(&self) -> u64 {
        self.fragments
            .iter()
            .map(|f| f.search.candidates_deduped)
            .sum()
    }

    /// Candidates actually screened against the bounded checker across
    /// all fragments (`generated − deduped`).
    pub fn total_screened(&self) -> u64 {
        self.fragments
            .iter()
            .map(|f| f.search.candidates_checked)
            .sum()
    }

    /// Whole-translation dedup ratio: the fraction of streamed candidates
    /// the OE layer retired as duplicates of already-rejected candidates
    /// instead of charging to the screening ledger.
    pub fn dedup_ratio(&self) -> f64 {
        let generated = self.total_generated();
        if generated == 0 {
            return 0.0;
        }
        self.total_deduped() as f64 / generated as f64
    }

    pub fn total_compile_time(&self) -> Duration {
        self.fragments.iter().map(|f| f.compile_time).sum()
    }

    /// Summed full-verification wall clock across fragments.
    pub fn total_verify_wall(&self) -> Duration {
        self.fragments.iter().map(|f| f.verify_wall).sum()
    }

    /// Summed candidate-screening wall clock across fragments — the
    /// engine-side counterpart of [`total_verify_wall`] in the per-engine
    /// time split.
    ///
    /// [`total_verify_wall`]: TranslationReport::total_verify_wall
    pub fn total_screen_wall(&self) -> Duration {
        self.fragments.iter().map(|f| f.screen_wall).sum()
    }

    /// The evaluation engine the translation ran on (all fragments of one
    /// translation share a config).
    pub fn engine(&self) -> &'static str {
        self.fragments
            .first()
            .map(|f| f.engine)
            .unwrap_or_else(|| casper_ir::Engine::default().name())
    }

    /// Summed full-verification CPU time across fragments.
    pub fn total_verify_cpu(&self) -> Duration {
        self.fragments.iter().map(|f| f.verify_cpu).sum()
    }

    /// Verdict-cache hits across all fragments.
    pub fn total_verdict_cache_hits(&self) -> u64 {
        self.fragments.iter().map(|f| f.verdict_cache_hits).sum()
    }

    /// Verdict-cache misses (full verifications) across all fragments.
    pub fn total_verdict_cache_misses(&self) -> u64 {
        self.fragments.iter().map(|f| f.verdict_cache_misses).sum()
    }

    /// Whole-translation verdict-cache hit ratio.
    pub fn verdict_cache_hit_ratio(&self) -> f64 {
        hit_ratio(
            self.total_verdict_cache_hits(),
            self.total_verdict_cache_misses(),
        )
    }

    /// Summed plan-lowering time across fragments — compare with the
    /// per-execution times the runtime bench reports to see what the
    /// compile-once/run-many trade buys.
    pub fn total_plan_compile_time(&self) -> Duration {
        self.fragments.iter().map(|f| f.plan_compile_time).sum()
    }

    /// Summed CPU time across fragments — compare with [`wall_time`] to
    /// read off the whole-translation core utilisation.
    ///
    /// [`wall_time`]: TranslationReport::wall_time
    pub fn total_cpu_time(&self) -> Duration {
        self.fragments.iter().map(|f| f.cpu_time).sum()
    }

    /// The translated fragment for a function name, if any.
    pub fn for_function(&self, func: &str) -> Option<&FragmentReport> {
        self.fragments.iter().find(|f| f.func == func)
    }
}
