//! Translation reports: everything the evaluation tables read off.

use std::time::Duration;

use analyzer::fragment::FragmentFeatures;
use casper_ir::mr::ProgramSummary;
use codegen::{Dialect, GeneratedProgram};
use synthesis::SearchReport;

/// Why a fragment failed to translate (§7.1's failure taxonomy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureReason {
    /// Loops inside transformer functions / derived inner iteration.
    InnerDataLoop,
    /// Library methods without IR models.
    UnmodeledMethod,
    /// Search space exhausted without a verified summary.
    SearchExhausted,
    /// Synthesis hit the time budget (the paper's 90-minute timeouts).
    Timeout,
}

impl FailureReason {
    pub fn describe(&self) -> &'static str {
        match self {
            FailureReason::InnerDataLoop => {
                "requires loops inside transformer functions (inexpressible in IR)"
            }
            FailureReason::UnmodeledMethod => "uses library methods with no IR model",
            FailureReason::SearchExhausted => "no verified summary in the search space",
            FailureReason::Timeout => "synthesis timed out",
        }
    }
}

/// The result of translating one fragment.
pub enum FragmentOutcome {
    Translated {
        /// All verified summaries, cheapest first (post static pruning).
        summaries: Vec<ProgramSummary>,
        /// The runnable program: variants + runtime monitor.
        program: GeneratedProgram,
        /// Generated target code for the configured dialect.
        code: String,
        dialect: Dialect,
    },
    Failed(FailureReason),
}

impl FragmentOutcome {
    pub fn is_translated(&self) -> bool {
        matches!(self, FragmentOutcome::Translated { .. })
    }
}

/// Per-fragment report.
pub struct FragmentReport {
    pub id: String,
    pub func: String,
    /// Fragment LOC (Table 2).
    pub loc: usize,
    pub features: FragmentFeatures,
    pub outcome: FragmentOutcome,
    /// Search statistics (candidates, TP failures, time — Tables 2/3).
    pub search: SearchReport,
    /// Total compile time for this fragment.
    pub compile_time: Duration,
}

impl FragmentReport {
    /// MapReduce operator count of the best summary (Table 2's "# Op").
    pub fn op_count(&self) -> usize {
        match &self.outcome {
            FragmentOutcome::Translated { summaries, .. } => {
                summaries.first().map(|s| s.op_count()).unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// Generated-code LOC (Table 2's LOC for the translation).
    pub fn generated_loc(&self) -> usize {
        match &self.outcome {
            FragmentOutcome::Translated { code, .. } => codegen::emit::code_loc(code),
            _ => 0,
        }
    }
}

/// Whole-program translation report.
pub struct TranslationReport {
    pub fragments: Vec<FragmentReport>,
}

impl TranslationReport {
    pub fn identified_count(&self) -> usize {
        self.fragments.len()
    }

    pub fn translated_count(&self) -> usize {
        self.fragments.iter().filter(|f| f.outcome.is_translated()).count()
    }

    pub fn total_tp_failures(&self) -> u64 {
        self.fragments.iter().map(|f| f.search.verifier_rejections).sum()
    }

    pub fn total_compile_time(&self) -> Duration {
        self.fragments.iter().map(|f| f.compile_time).sum()
    }

    /// The translated fragment for a function name, if any.
    pub fn for_function(&self, func: &str) -> Option<&FragmentReport> {
        self.fragments.iter().find(|f| f.func == func)
    }
}
