//! The compilation pipeline: analyze → synthesize → verify → prune →
//! generate.
//!
//! Independent fragments translate concurrently on a scoped worker pool
//! (the [`CasperConfig::parallelism`] knob), and each fragment's CEGIS
//! search can itself screen candidate chunks across cores
//! ([`synthesis::FindConfig::parallelism`]). Candidate screening runs on
//! the compiled evaluator with observational-equivalence dedup; the
//! per-fragment generated/deduped/screened counters surface through
//! [`FragmentReport::search`] and the [`TranslationReport`] aggregates.
//! Reports always come back in source order, and `parallelism = 1`
//! reproduces the sequential behavior exactly — the configuration the
//! paper's ablations assume.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use analyzer::fragment::Fragment;
use analyzer::identify_fragments;
use casper_ir::mr::ProgramSummary;
use casper_runtime::{run_indexed, Priority, RuntimeMode};
use codegen::{generated_code, CompiledPlan, Dialect, GeneratedProgram, Variant};
use cost::model::{prune_dominated, static_cost};
use cost::CostWeights;
use seqlang::error::Result;
use seqlang::ty::Type;
use synthesis::{find_summary, FindConfig, FindOutcome, VerifierVerdict};
use verifier::{Verifier, VerifyConfig};

use crate::report::{FailureReason, FragmentOutcome, FragmentReport, TranslationReport};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct CasperConfig {
    pub find: FindConfig,
    pub verify: VerifyConfig,
    /// Target dialect for generated code (plans run on the same engine;
    /// the dialect changes code text and simulator pricing).
    pub dialect: Dialect,
    /// Apply compile-time dominance pruning (§5.2).
    pub static_pruning: bool,
    pub weights: CostWeights,
    /// Worker threads translating independent fragments concurrently.
    /// Defaults to the host's core count; `1` reproduces the sequential
    /// pipeline. The inner search parallelism (`find.parallelism`) is
    /// divided among concurrent fragments so the two pools compose
    /// without oversubscribing the machine.
    pub parallelism: usize,
    /// Which pool every parallel phase runs on: the persistent
    /// work-stealing executor (default) or fresh scoped pools per call
    /// (the pre-runtime ablation baseline). Reports and generated
    /// programs are bit-identical either way.
    pub runtime: RuntimeMode,
}

impl Default for CasperConfig {
    fn default() -> Self {
        CasperConfig {
            find: FindConfig::default(),
            verify: VerifyConfig::default(),
            dialect: Dialect::Spark,
            static_pruning: true,
            weights: CostWeights::default(),
            parallelism: synthesis::default_parallelism(),
            runtime: RuntimeMode::default(),
        }
    }
}

/// Adapt one [`verifier::Verification`] into the verdict struct
/// `find_summary` consumes — the single mapping between the verifier's
/// accounting and the search's, shared by the pipeline and the bench
/// harnesses.
pub fn search_verdict(v: &verifier::Verification) -> VerifierVerdict {
    VerifierVerdict {
        verified: v.result.verified,
        cpu_time: v.cpu,
        cache_hit: v.cache_hit,
    }
}

impl CasperConfig {
    /// Set the fragment-level, inner-search, and verifier worker counts.
    /// `with_parallelism(1)` is the fully sequential configuration the
    /// paper's ablations (Table 3) assume.
    pub fn with_parallelism(mut self, workers: usize) -> CasperConfig {
        self.parallelism = workers.max(1);
        self.find.parallelism = workers.max(1);
        self.verify.parallelism = workers.max(1);
        self
    }

    /// Run screening AND verification on one candidate-evaluation
    /// engine — the bytecode VM by default; `Engine::ClosureTree` is the
    /// differential-reference ablation. Outcomes are bit-identical either
    /// way; only the time split changes.
    pub fn with_engine(mut self, engine: casper_ir::Engine) -> CasperConfig {
        self.find.engine = engine;
        self.verify.engine = engine;
        self
    }

    /// Run every parallel phase — fragment translation, candidate
    /// screening, obligation checking — under one [`RuntimeMode`].
    /// `RuntimeMode::ScopedLegacy` restores the per-call scoped pools;
    /// outcomes are bit-identical, only scheduling differs.
    pub fn with_runtime(mut self, mode: RuntimeMode) -> CasperConfig {
        self.runtime = mode;
        self.find.runtime = mode;
        self.verify.runtime = mode;
        self
    }
}

/// The Casper compiler.
pub struct Casper {
    pub config: CasperConfig,
}

impl Casper {
    pub fn new(config: CasperConfig) -> Casper {
        Casper { config }
    }

    /// Translate every candidate fragment in a source program.
    ///
    /// Fragments are independent compilation units, so they are dealt to
    /// a scoped worker pool of [`CasperConfig::parallelism`] threads;
    /// per-fragment reports land in indexed slots, keeping the report
    /// order identical to source order at any worker count.
    ///
    /// ```
    /// use casper::{Casper, CasperConfig};
    ///
    /// let src = r#"
    ///     fn total(xs: list<int>) -> int {
    ///         let t: int = 0;
    ///         for (x in xs) { t = t + x; }
    ///         return t;
    ///     }
    /// "#;
    /// let casper = Casper::new(CasperConfig::default().with_parallelism(2));
    /// let report = casper.translate_source(src).unwrap();
    /// assert_eq!(report.translated_count(), 1);
    /// ```
    pub fn translate_source(&self, src: &str) -> Result<TranslationReport> {
        let started = Instant::now();
        let rt_before = casper_runtime::global().stats();
        let program = Arc::new(seqlang::compile(src)?);
        let fragments = identify_fragments(&program);
        let reports = self.translate_fragments(&fragments);
        Ok(TranslationReport {
            fragments: reports,
            wall_time: started.elapsed(),
            runtime_mode: self.config.runtime.name(),
            runtime_stats: casper_runtime::global().stats().since(&rt_before),
        })
    }

    /// Translate a batch of fragments, concurrently when configured.
    pub fn translate_fragments(&self, fragments: &[Fragment]) -> Vec<FragmentReport> {
        let workers = self.config.parallelism.max(1).min(fragments.len().max(1));
        if workers <= 1 {
            return fragments
                .iter()
                .map(|f| self.translate_fragment(f))
                .collect();
        }

        // Divide the inner screening and verification pools among
        // concurrent fragments so `parallelism` bounds total thread
        // pressure instead of multiplying it.
        let mut inner_config = self.config.clone();
        inner_config.find.parallelism = (self.config.find.parallelism.max(1) / workers).max(1);
        inner_config.verify.parallelism = (self.config.verify.parallelism.max(1) / workers).max(1);
        let inner = Casper::new(inner_config);

        let n = fragments.len();
        let mut out: Vec<Option<FragmentReport>> = (0..n).map(|_| None).collect();
        let slots: Vec<Mutex<&mut Option<FragmentReport>>> =
            out.iter_mut().map(Mutex::new).collect();
        run_indexed(self.config.runtime, workers, Priority::Normal, n, &|i| {
            let report = inner.translate_fragment(&fragments[i]);
            **slots[i].lock().expect("report slot") = Some(report);
        });
        out.into_iter()
            .map(|slot| slot.expect("fragment translated"))
            .collect()
    }

    /// Translate a single fragment.
    pub fn translate_fragment(&self, fragment: &Fragment) -> FragmentReport {
        let started = Instant::now();
        let rt_before = casper_runtime::global().stats();

        // Fast structural failures (§7.1's taxonomy).
        if fragment.features.inner_data_loop {
            return self.failed(fragment, FailureReason::InnerDataLoop, started);
        }
        if fragment.features.unmodeled_method {
            return self.failed(fragment, FailureReason::UnmodeledMethod, started);
        }

        // One verification engine per fragment: the full-domain basis is
        // built once and shared by reference across every candidate the
        // search sends over, and the verdict cache turns re-verification
        // (property harvesting below, equivalent candidates across
        // grammar classes) into lookups. The search receives the engine
        // itself — not a domain config to rebuild per candidate.
        let verifier = Verifier::new(fragment, self.config.verify.clone());
        let full = |summary: &ProgramSummary| -> VerifierVerdict {
            search_verdict(&verifier.verify(summary))
        };
        let (outcome, search) = find_summary(fragment, &full, &self.config.find);
        let seal_verify = |report: &mut FragmentReport| {
            report.verify_wall = verifier.wall_time();
            report.verify_cpu = verifier.cpu_time();
            report.verdict_cache_hits = verifier.cache_hits();
            report.verdict_cache_misses = verifier.cache_misses();
            report.engine = self.config.find.engine.name();
            report.runtime_mode = self.config.runtime.name();
            report.runtime_stats = casper_runtime::global().stats().since(&rt_before);
        };
        let summaries = match outcome {
            FindOutcome::Found(s) => s,
            FindOutcome::TimedOut => {
                let mut report = FragmentReport::new(
                    fragment,
                    FragmentOutcome::Failed(FailureReason::Timeout),
                    search,
                    started.elapsed(),
                );
                seal_verify(&mut report);
                return report;
            }
            FindOutcome::Exhausted => {
                let mut report = FragmentReport::new(
                    fragment,
                    FragmentOutcome::Failed(FailureReason::SearchExhausted),
                    search,
                    started.elapsed(),
                );
                seal_verify(&mut report);
                return report;
            }
        };

        // Static cost pruning (§5.2): drop summaries dominated for every
        // probability assignment.
        let type_of = self.fragment_type_env(fragment);
        let kept: Vec<ProgramSummary> = if self.config.static_pruning {
            let costed: Vec<(ProgramSummary, cost::SymCost)> = summaries
                .into_iter()
                .map(|s| {
                    let c = static_cost(&s, &type_of, &[], &self.config.weights);
                    (s, c)
                })
                .collect();
            prune_dominated(costed)
                .into_iter()
                .map(|(s, _)| s)
                .collect()
        } else {
            summaries
        };

        // Compile surviving variants: re-verify to harvest CA properties
        // for primitive selection — a verdict-cache lookup, since every
        // kept summary was verified on its way into ∆ — then lower each
        // summary into a fused, slot-resolved plan and build the monitor
        // program. Plan lowering is timed separately: it is the pay-once
        // cost that buys closure-per-record execution.
        let mut variants = Vec::with_capacity(kept.len());
        let mut code = String::new();
        let mut plan_compile_time = std::time::Duration::ZERO;
        for (i, summary) in kept.iter().enumerate() {
            let vr = verifier.verify(summary).result;
            let lowering = Instant::now();
            let plan = CompiledPlan::new(summary.clone(), vr.reduce_properties.clone());
            plan_compile_time += lowering.elapsed();
            if i == 0 {
                code = generated_code(summary, &plan.reduce_props, self.config.dialect);
            }
            variants.push(Variant {
                name: format!("v{}", i + 1),
                plan,
            });
        }
        let program = GeneratedProgram::new(variants);

        let mut report = FragmentReport::new(
            fragment,
            FragmentOutcome::Translated {
                summaries: kept,
                program,
                code,
                dialect: self.config.dialect,
            },
            search,
            started.elapsed(),
        );
        report.plan_compile_time = plan_compile_time;
        seal_verify(&mut report);
        report
    }

    fn failed(
        &self,
        fragment: &Fragment,
        reason: FailureReason,
        started: Instant,
    ) -> FragmentReport {
        let mut report = FragmentReport::new(
            fragment,
            FragmentOutcome::Failed(reason),
            Default::default(),
            started.elapsed(),
        );
        report.engine = self.config.find.engine.name();
        report.runtime_mode = self.config.runtime.name();
        report
    }

    /// Type environment for static costing: λ params of each source,
    /// free scalars, and struct-field paths.
    fn fragment_type_env(&self, fragment: &Fragment) -> impl Fn(&str) -> Option<Type> + 'static {
        let grammar = synthesis::Grammar::for_fragment(fragment);
        let mut pairs: Vec<(String, Type)> = grammar.scalars.clone();
        for spec in &grammar.sources {
            for (p, t) in spec.params.iter().zip(&spec.param_tys) {
                pairs.push((p.clone(), t.clone()));
            }
        }
        for (e, t) in &grammar.field_atoms {
            pairs.push((format!("{e}"), t.clone()));
        }
        move |name: &str| {
            pairs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::Context;
    use seqlang::env::Env;
    use seqlang::value::Value;

    fn casper() -> Casper {
        Casper::new(CasperConfig::default())
    }

    #[test]
    fn end_to_end_sum() {
        let src = r#"
            fn sum(xs: list<int>) -> int {
                let s: int = 0;
                for (x in xs) { s = s + x; }
                return s;
            }
        "#;
        let report = casper().translate_source(src).unwrap();
        assert_eq!(report.identified_count(), 1);
        assert_eq!(report.translated_count(), 1);
        let frag = &report.fragments[0];
        let FragmentOutcome::Translated { program, code, .. } = &frag.outcome else {
            panic!("not translated");
        };
        assert!(code.contains("reduceByKey"), "{code}");

        // Execute the generated program and compare with the sequential
        // semantics.
        let ctx = Context::with_parallelism(4, 8);
        let mut state = Env::new();
        state.set("xs", Value::List((1..=100).map(Value::Int).collect()));
        state.set("s", Value::Int(0));
        let (out, _) = program.run(&ctx, &state).unwrap();
        assert_eq!(out.get("s"), Some(&Value::Int(5050)));
    }

    #[test]
    fn end_to_end_row_wise_mean() {
        // The paper's running example (Figure 1).
        let src = r#"
            fn rwm(mat: array<array<int>>, rows: int, cols: int) -> array<int> {
                let m: array<int> = new array<int>(rows);
                for (let i: int = 0; i < rows; i = i + 1) {
                    let sum: int = 0;
                    for (let j: int = 0; j < cols; j = j + 1) {
                        sum = sum + mat[i][j];
                    }
                    m[i] = sum / cols;
                }
                return m;
            }
        "#;
        let report = casper().translate_source(src).unwrap();
        assert_eq!(report.translated_count(), 1, "rwm must translate");
        let frag = &report.fragments[0];
        let FragmentOutcome::Translated {
            program, summaries, ..
        } = &frag.outcome
        else {
            panic!()
        };
        // The Figure 1 summary is a 3-operator pipeline.
        assert!(
            summaries.iter().any(|s| s.op_count() == 3),
            "{}",
            summaries.len()
        );

        let ctx = Context::with_parallelism(4, 8);
        let mut state = Env::new();
        state.set(
            "mat",
            Value::Array(vec![
                Value::Array(vec![Value::Int(2), Value::Int(4)]),
                Value::Array(vec![Value::Int(6), Value::Int(8)]),
                Value::Array(vec![Value::Int(1), Value::Int(1)]),
            ]),
        );
        state.set("rows", Value::Int(3));
        state.set("cols", Value::Int(2));
        state.set(
            "m",
            Value::Array(vec![Value::Int(0), Value::Int(0), Value::Int(0)]),
        );
        let (out, _) = program.run(&ctx, &state).unwrap();
        assert_eq!(
            out.get("m"),
            Some(&Value::Array(vec![
                Value::Int(3),
                Value::Int(7),
                Value::Int(1)
            ]))
        );
    }

    #[test]
    fn untranslatable_fragment_reports_reason() {
        let src = r#"
            fn wc(lines: list<string>) -> int {
                let n: int = 0;
                for (line in lines) {
                    for (w in line.split()) { n = n + 1; }
                }
                return n;
            }
        "#;
        let report = casper().translate_source(src).unwrap();
        assert_eq!(report.translated_count(), 0);
        let FragmentOutcome::Failed(reason) = &report.fragments[0].outcome else {
            panic!()
        };
        assert_eq!(*reason, FailureReason::InnerDataLoop);
    }

    #[test]
    fn word_count_translates_and_runs() {
        let src = r#"
            fn wc(words: list<string>) -> map<string,int> {
                let counts: map<string,int> = new map<string,int>();
                for (w in words) {
                    counts.put(w, counts.get_or(w, 0) + 1);
                }
                return counts;
            }
        "#;
        let report = casper().translate_source(src).unwrap();
        assert_eq!(report.translated_count(), 1, "WordCount must translate");
        let FragmentOutcome::Translated { program, .. } = &report.fragments[0].outcome else {
            panic!()
        };
        let ctx = Context::with_parallelism(4, 8);
        let mut state = Env::new();
        state.set(
            "words",
            Value::List(["a", "b", "a"].iter().map(Value::str).collect()),
        );
        state.set("counts", Value::Map(vec![]));
        let (out, _) = program.run(&ctx, &state).unwrap();
        let Value::Map(m) = out.get("counts").unwrap() else {
            panic!()
        };
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn multiple_variants_survive_for_stringmatch() {
        let src = r#"
            fn sm(text: list<string>, key1: string, key2: string) -> bool {
                let f1: bool = false;
                let f2: bool = false;
                for (w in text) {
                    if (w == key1) { f1 = true; }
                    if (w == key2) { f2 = true; }
                }
                return f1;
            }
        "#;
        let report = casper().translate_source(src).unwrap();
        assert_eq!(report.translated_count(), 1, "StringMatch must translate");
        let FragmentOutcome::Translated { program, .. } = &report.fragments[0].outcome else {
            panic!()
        };
        // §7.4: multiple semantically equivalent implementations exist and
        // survive static pruning (the skew-dependent family).
        assert!(
            program.variants.len() >= 2,
            "need ≥ 2 variants for dynamic tuning, got {}",
            program.variants.len()
        );
    }
}
