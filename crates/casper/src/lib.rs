//! `casper` — the end-to-end compiler (§2.3, Figure 2).
//!
//! The pipeline mirrors the paper's three modules:
//!
//! 1. **Program analyzer** — parse and type-check the sequential source,
//!    identify candidate code fragments, compute input/output variables
//!    and the grammar seed (`analyzer`);
//! 2. **Summary generator** — search for program summaries with CEGIS
//!    over the incremental grammar hierarchy, adjudicating candidates
//!    with the full verifier (`synthesis` + `verifier`);
//! 3. **Code generator** — prune dominated summaries with the static cost
//!    model, compile the survivors into engine plans for the chosen
//!    dialect, and wrap them in the runtime monitor (`cost` + `codegen`).
//!
//! ```no_run
//! use casper::{Casper, CasperConfig};
//!
//! let src = r#"
//!     fn sum(xs: list<int>) -> int {
//!         let s: int = 0;
//!         for (x in xs) { s = s + x; }
//!         return s;
//!     }
//! "#;
//! let report = Casper::new(CasperConfig::default()).translate_source(src).unwrap();
//! assert_eq!(report.translated_count(), 1);
//! ```

pub mod pipeline;
pub mod report;

pub use casper_runtime::{ExecutorStats, RuntimeMode};
pub use pipeline::{search_verdict, Casper, CasperConfig};
pub use report::{FragmentOutcome, FragmentReport, TranslationReport};
