//! Workspace façade for the Casper reproduction.
//!
//! This crate re-exports the public surface of every sub-crate so the
//! repository-level examples and integration tests have a single
//! dependency root. The interesting code lives in the sub-crates — see
//! `ARCHITECTURE.md` for the map from crates to the paper's sections:
//!
//! * [`seqlang`] — the sequential input language (§2)
//! * [`analyzer`] — fragment identification and VC generation (§3)
//! * [`synthesis`] — grammar generation, enumeration, CEGIS (§3.4, §4)
//! * [`verifier`] — full verification and CA-property harvesting (§4.1)
//! * [`cost`] — the symbolic cost model and dominance pruning (§5)
//! * [`codegen`] — plan compilation, dialect emission, runtime monitor (§6)
//! * [`casper`] — the end-to-end compiler pipeline (§2.3, Figure 2)
//! * [`mapreduce`] — the executable MapReduce substrate and cluster simulator
//! * [`suites`] — the paper's benchmark programs (§7)
//! * [the `bench` harness](::bench) — the table/figure harness binaries (§7)

pub use ::bench;
pub use analyzer;
pub use casper;
pub use casper_ir;
pub use codegen;
pub use cost;
pub use mapreduce;
pub use seqlang;
pub use suites;
pub use synthesis;
pub use verifier;
