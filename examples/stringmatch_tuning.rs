//! Dynamic tuning demo (§5.2, §7.4, Figure 8): Casper generates multiple
//! verified StringMatch implementations; the runtime monitor samples the
//! input and switches between them as the keyword skew changes.
//!
//! Run with: `cargo run --example stringmatch_tuning`

use casper::{Casper, CasperConfig, FragmentOutcome};
use casper_ir::mr::OutputKind;
use mapreduce::Context;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqlang::env::Env;
use seqlang::value::Value;
use suites::data;
use synthesis::FindConfig;

const SOURCE: &str = r#"
    fn string_match(text: list<string>, key1: string, key2: string) -> bool {
        let found1: bool = false;
        let found2: bool = false;
        for (w in text) {
            if (w == key1) { found1 = true; }
            if (w == key2) { found2 = true; }
        }
        return found1 && found2;
    }
"#;

fn main() {
    // A wide candidate budget: `top_k` is how many cost-ordered verified
    // summaries the search hands to the optimizer (the default of 3 is
    // tuned for the sweep; the demo wants the whole solution family so
    // the monitor has encodings to switch between).
    let config = CasperConfig {
        find: FindConfig {
            top_k: 12,
            ..FindConfig::default()
        },
        ..CasperConfig::default()
    };
    let report = Casper::new(config)
        .translate_source(SOURCE)
        .expect("compiles");
    let frag = report.for_function("string_match").expect("fragment");
    let FragmentOutcome::Translated { program, .. } = &frag.outcome else {
        panic!("StringMatch should translate")
    };
    println!(
        "Casper generated {} statically-incomparable variants:\n",
        program.variants.len()
    );
    for v in &program.variants {
        let kind = match &v.plan.summary.bindings[0].kind {
            OutputKind::ScalarTuple => "tuple encoding — Figure 8's solution (b)",
            OutputKind::KeyedScalars { .. } => "keyed emits — solution (a)/(c) family",
            _ => "other",
        };
        println!("  {}: {kind}", v.name);
    }

    let ctx = Context::new();
    println!("\nRunning over datasets with different keyword skew:\n");
    for frac in [0.0, 0.5, 0.95] {
        let mut rng = StdRng::seed_from_u64(42);
        let mut state = Env::new();
        state.set("text", data::skewed_text(&mut rng, 20_000, "needle", frac));
        state.set("key1", Value::str("needle"));
        state.set("key2", Value::str("rare"));
        state.set("found1", Value::Bool(false));
        state.set("found2", Value::Bool(false));

        let (out, choice) = program.run(&ctx, &state).expect("runs");
        println!(
            "match fraction {:>3.0}% → monitor chose variant {} \
             (costs: {:?}), found1={} found2={}",
            frac * 100.0,
            program.variants[choice.chosen].name,
            choice
                .costs
                .iter()
                .map(|c| format!("{:.2e}", c))
                .collect::<Vec<_>>(),
            out.get("found1").unwrap(),
            out.get("found2").unwrap(),
        );
    }
    println!("\nThe chosen implementation switches with the data distribution,");
    println!("exactly as Figure 8(c) reports.");
}
