//! Quickstart: translate the paper's running example — the row-wise mean
//! benchmark of Figure 1 — end to end, print the discovered program
//! summary and the generated Spark code, and execute the result on the
//! MapReduce engine.
//!
//! Run with: `cargo run --example quickstart`

use casper::{Casper, CasperConfig, FragmentOutcome};
use casper_ir::pretty::pretty_summary;
use mapreduce::Context;
use seqlang::env::Env;
use seqlang::value::Value;

const SOURCE: &str = r#"
    fn rwm(mat: array<array<int>>, rows: int, cols: int) -> array<int> {
        let m: array<int> = new array<int>(rows);
        for (let i: int = 0; i < rows; i = i + 1) {
            let sum: int = 0;
            for (let j: int = 0; j < cols; j = j + 1) {
                sum = sum + mat[i][j];
            }
            m[i] = sum / cols;
        }
        return m;
    }
"#;

fn main() {
    println!("== Input: sequential row-wise mean (Figure 1a) ==\n{SOURCE}");

    let casper = Casper::new(CasperConfig::default());
    let report = casper.translate_source(SOURCE).expect("source compiles");
    println!(
        "Fragments identified: {}, translated: {}\n",
        report.identified_count(),
        report.translated_count()
    );

    let frag = report.for_function("rwm").expect("fragment found");
    let FragmentOutcome::Translated {
        summaries,
        program,
        code,
        ..
    } = &frag.outcome
    else {
        panic!("row-wise mean should translate");
    };

    println!(
        "== Synthesized program summary ==\n{}\n",
        pretty_summary(&summaries[0])
    );
    println!("== Generated Spark code (Figure 1b) ==\n{code}");

    // Execute on the engine.
    let ctx = Context::new();
    let mut state = Env::new();
    state.set(
        "mat",
        Value::Array(vec![
            Value::Array(vec![Value::Int(1), Value::Int(3)]),
            Value::Array(vec![Value::Int(10), Value::Int(20)]),
            Value::Array(vec![Value::Int(7), Value::Int(7)]),
        ]),
    );
    state.set("rows", Value::Int(3));
    state.set("cols", Value::Int(2));
    state.set(
        "m",
        Value::Array(vec![Value::Int(0), Value::Int(0), Value::Int(0)]),
    );
    let (out, _) = program.run(&ctx, &state).expect("plan executes");
    println!("== Executed on the MapReduce engine ==");
    println!("m = {}", out.get("m").unwrap());
    println!("\nEngine stages:\n{}", ctx.stats());
}
