//! Iterative workloads (§7.2, Figure 7c): PageRank with the translated
//! per-iteration fragments, compared against the cached Spark-tutorial
//! reference. Shows why Casper's missing `cache()` costs ~1.3× in the
//! paper: the uncached pipeline re-ingests and re-groups the edges every
//! iteration.
//!
//! Run with: `cargo run --example pagerank`

use mapreduce::sim::simulate_job;
use mapreduce::{ClusterSpec, Context, Framework};
use rand::rngs::StdRng;
use rand::SeedableRng;
use suites::{data, manual};

fn main() {
    let ctx = Context::new();
    let mut rng = StdRng::seed_from_u64(2026);
    let n_nodes = 300;
    let ev = data::edges(&mut rng, 3000, n_nodes);
    let edges: Vec<(i64, i64)> = ev
        .elements()
        .unwrap()
        .iter()
        .map(|e| {
            (
                e.field("src").unwrap().as_int().unwrap(),
                e.field("dst").unwrap().as_int().unwrap(),
            )
        })
        .collect();

    let iterations = 10;
    println!(
        "PageRank over {} edges, {iterations} iterations\n",
        edges.len()
    );

    ctx.reset_stats();
    let cached = manual::pagerank_cached(&ctx, &edges, n_nodes, iterations);
    let cached_stats = ctx.stats();

    ctx.reset_stats();
    let uncached = manual::pagerank_uncached(&ctx, &edges, n_nodes, iterations);
    let uncached_stats = ctx.stats();

    // Same answer either way.
    let max_diff = cached
        .iter()
        .zip(&uncached)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max rank difference between variants: {max_diff:.2e} (identical)");

    // But very different data movement.
    println!(
        "\ncached (tutorial):   {} stages, {:.1} MB shuffled",
        cached_stats.stage_count(),
        cached_stats.total_shuffled_bytes() as f64 / 1e6
    );
    println!(
        "uncached (Casper):   {} stages, {:.1} MB shuffled",
        uncached_stats.stage_count(),
        uncached_stats.total_shuffled_bytes() as f64 / 1e6
    );

    // Priced at the paper's scale (2.25 B edges).
    let spec = ClusterSpec::paper();
    let factor = 2_250_000_000f64 / edges.len() as f64;
    let t_cached = simulate_job(&cached_stats.scaled(factor), &spec, Framework::Spark).seconds;
    let t_uncached = simulate_job(&uncached_stats.scaled(factor), &spec, Framework::Spark).seconds;
    println!(
        "\nsimulated at 2.25B edges: tutorial {t_cached:.0} s vs Casper-style \
         {t_uncached:.0} s ({:.2}x — the paper reports 1.3x)",
        t_uncached / t_cached
    );

    let top = cached
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!("\nhighest-ranked node: {} (rank {:.3})", top.0, top.1);
}
