//! TPC-H Q6 end to end (§7.1, Appendix D): translate the hand-written
//! sequential Java-style implementation of the query, print the grammar
//! facts the analyzer extracts (the Appendix D table), and compare the
//! generated plan's answer against the sequential run on generated
//! SF-scaled data.
//!
//! Run with: `cargo run --example tpch_q6`

use std::sync::Arc;

use analyzer::identify_fragments;
use casper::{Casper, CasperConfig, FragmentOutcome};
use casper_ir::pretty::pretty_summary;
use mapreduce::Context;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqlang::value::Value;
use suites::{all_benchmarks, tpch};

fn main() {
    let all = all_benchmarks();
    let b = all
        .iter()
        .find(|b| b.name == "tpch/q6_revenue")
        .expect("registered");

    // The Appendix D program-analysis table.
    let program = Arc::new(seqlang::compile(b.source).unwrap());
    let frag = identify_fragments(&program)
        .into_iter()
        .find(|f| f.func == "q6_revenue")
        .expect("fragment");
    println!("== Program analysis (Appendix D) ==");
    println!(
        "inputs:    {:?}",
        frag.inputs.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    println!(
        "outputs:   {:?}",
        frag.outputs.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    println!("operators: {:?}", frag.seed.operators);
    println!("constants: {:?}", frag.seed.constants);
    println!("methods:   {:?}\n", frag.seed.methods);

    // Translate.
    let report = Casper::new(CasperConfig::default())
        .translate_source(b.source)
        .expect("compiles");
    let fr = report.for_function("q6_revenue").expect("fragment report");
    let FragmentOutcome::Translated {
        summaries,
        program: gen,
        code,
        ..
    } = &fr.outcome
    else {
        panic!("Q6 should translate")
    };
    println!(
        "== Synthesized summary ==\n{}\n",
        pretty_summary(&summaries[0])
    );
    println!("== Generated Spark code ==\n{code}");

    // Execute and compare against the sequential semantics.
    let mut rng = StdRng::seed_from_u64(100);
    let mut state = (b.gen)(&mut rng, 50_000);
    state.set("revenue", Value::Double(0.0));
    let seq_post = frag.run(&state).expect("sequential runs");
    let expected = seq_post.get("revenue").unwrap().clone();

    let ctx = Context::new();
    let (out, _) = gen.run(&ctx, &state).expect("plan runs");
    let got = out.get("revenue").unwrap().clone();
    println!("sequential revenue = {expected}");
    println!("MapReduce revenue  = {got}");
    let (Value::Double(a), Value::Double(bv)) = (&expected, &got) else {
        panic!()
    };
    assert!(
        (a - bv).abs() < 1e-6 * a.abs().max(1.0),
        "results must agree"
    );
    println!("\n✓ results agree on 50,000 generated lineitem rows");

    // The paper's SparkSQL comparison runs over the same schema.
    let rows = suites::sqlbase::to_rows(state.get("lineitem").unwrap().elements().unwrap());
    let sql = suites::sqlbase::q6(&ctx, &rows, 8100, 9000);
    println!("SparkSQL-style plan agrees too: {sql}");
    let _ = tpch::lineitem_layout();
}
