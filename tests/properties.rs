//! Property-based tests over the core invariants, spanning crates:
//! the IR evaluator vs the engine, the verification conditions, and the
//! engine's shuffle determinism.

use casper_ir::eval::eval_summary;
use casper_ir::expr::IrExpr;
use casper_ir::lambda::{Emit, MapLambda, ReduceLambda};
use casper_ir::mr::{DataSource, MrExpr, OutputKind, ProgramSummary};
use codegen::CompiledPlan;
use mapreduce::rdd::Rdd;
use mapreduce::Context;
use proptest::prelude::*;
use seqlang::ast::BinOp;
use seqlang::env::Env;
use seqlang::ty::Type;
use seqlang::value::Value;
use verifier::CaProperties;

fn sum_summary() -> ProgramSummary {
    let m = MapLambda::new(
        vec!["x"],
        vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
    );
    let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
        .map(m)
        .reduce(ReduceLambda::binop(BinOp::Add));
    ProgramSummary::single("s", expr, OutputKind::Scalar)
}

fn ca() -> CaProperties {
    CaProperties {
        commutative: true,
        associative: true,
    }
}

/// Canonicalize multiset-semantics outputs (maps and lists) by sorting,
/// so engine results (key-sorted collect) compare against the IR
/// evaluator's first-appearance order.
fn canon(env: &Env) -> Env {
    env.iter()
        .map(|(k, v)| {
            let v = match v {
                Value::Map(entries) => {
                    let mut e = entries.clone();
                    e.sort();
                    Value::Map(e)
                }
                Value::List(items) => {
                    let mut xs = items.clone();
                    xs.sort();
                    Value::List(xs)
                }
                other => other.clone(),
            };
            (k.clone(), v)
        })
        .collect()
}

/// The core differential contract of the execution data plane: the
/// fused buffered plan, the boxed golden reference, the unfused compiled
/// plan, and the tree-walking interpreted plan agree exactly (outputs
/// and error outcomes), and all agree with the IR reference evaluator
/// and `CompiledSummary::eval` up to multiset canonicalization.
fn assert_data_plane_agrees(summary: &ProgramSummary, props: Vec<CaProperties>, state: &Env) {
    use casper_ir::compile::CompiledSummary;
    use codegen::PlanCache;

    let plan = CompiledPlan::new(summary.clone(), props);
    let ctx = Context::with_parallelism(4, 8);
    let fused = plan.execute(&ctx, state);
    let unfused = plan.execute_compiled_unfused(&ctx, state);
    let interp = plan.execute_interpreted(&ctx, state);
    let reference = eval_summary(summary, state);
    let compiled_ref = CompiledSummary::compile(summary).eval(state);
    let mut cache = PlanCache::new();
    let cached_cold = plan.execute_cached(&ctx, state, &mut cache);
    let cached_warm = plan.execute_cached(&ctx, state, &mut cache);

    match (&fused, &interp, &unfused) {
        (Ok(a), Ok(b), Ok(c)) => {
            assert_eq!(a, b, "fused vs interpreted diverge");
            assert_eq!(a, c, "fused vs unfused diverge");
        }
        (Err(_), Err(_), Err(_)) => {}
        _ => panic!("plan modes disagree on failure: {fused:?} / {interp:?} / {unfused:?}"),
    }
    // The buffered plane against the boxed golden reference: identical
    // outputs AND identical error messages at every worker count.
    for workers in [1, 2, 4, 8] {
        let bctx = Context::with_parallelism(workers, 8);
        let boxed = plan.execute_boxed(&bctx, state);
        match (&fused, &boxed) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "buffered vs boxed diverge at {workers} workers")
            }
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "buffered vs boxed errors diverge at {workers} workers"
            ),
            _ => panic!("buffered vs boxed disagree on failure: {fused:?} / {boxed:?}"),
        }
    }
    match (&fused, &cached_cold, &cached_warm) {
        (Ok(a), Ok(b), Ok(c)) => {
            assert_eq!(a, b, "cached cold diverges");
            assert_eq!(a, c, "cached warm diverges");
        }
        (Err(_), Err(_), Err(_)) => {}
        _ => panic!("cache changes outcomes: {fused:?} / {cached_cold:?} / {cached_warm:?}"),
    }
    match (&reference, &compiled_ref) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "tree-walk vs CompiledSummary diverge"),
        (Err(_), Err(_)) => {}
        _ => panic!("IR evaluators disagree: {reference:?} / {compiled_ref:?}"),
    }
    match (&fused, &reference) {
        (Ok(a), Ok(b)) => assert_eq!(canon(a), canon(b), "engine vs IR evaluator diverge"),
        (Err(_), Err(_)) => {}
        _ => panic!("engine vs IR evaluator disagree on failure: {fused:?} / {reference:?}"),
    }
}

/// Strategy producing arbitrary well-typed expressions over the λ
/// parameters `v1`/`v2`, a state global `g`, and (rarely) an unbound
/// variable — so generated trees exercise values, faults
/// (division/modulo by zero), unbound-variable errors, short-circuit
/// evaluation, and conditionals.
struct ArbExpr {
    bool_out: bool,
}

fn arb_int_expr() -> ArbExpr {
    ArbExpr { bool_out: false }
}

fn arb_bool_expr() -> ArbExpr {
    ArbExpr { bool_out: true }
}

impl Strategy for ArbExpr {
    type Value = IrExpr;
    fn sample(&self, gen: &mut Gen) -> IrExpr {
        if self.bool_out {
            gen_bool_expr(gen, 3)
        } else {
            gen_int_expr(gen, 4)
        }
    }
}

fn gen_int_expr(gen: &mut Gen, depth: usize) -> IrExpr {
    use seqlang::ast::UnOp;
    let roll = gen.next_u64() % 100;
    if depth == 0 || roll < 40 {
        return match gen.next_u64() % 13 {
            0..=3 => IrExpr::int((gen.next_u64() % 40) as i64 - 20),
            4..=6 => IrExpr::var("v1"),
            7..=9 => IrExpr::var("v2"),
            10..=11 => IrExpr::var("g"),
            _ => IrExpr::var("missing"),
        };
    }
    if roll < 70 {
        let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod]
            [(gen.next_u64() % 5) as usize];
        IrExpr::bin(
            op,
            gen_int_expr(gen, depth - 1),
            gen_int_expr(gen, depth - 1),
        )
    } else if roll < 84 {
        IrExpr::If(
            Box::new(gen_bool_expr(gen, depth - 1)),
            Box::new(gen_int_expr(gen, depth - 1)),
            Box::new(gen_int_expr(gen, depth - 1)),
        )
    } else if roll < 92 {
        IrExpr::Un(UnOp::Neg, Box::new(gen_int_expr(gen, depth - 1)))
    } else {
        gen_agg_expr(gen, depth)
    }
}

/// Inline-aggregate expressions: fold over the state collection `ys`
/// (the common case), over `g` (bound but not a collection — a typed
/// error), or over an unbound name (an unbound-variable error). The body
/// references the element parameter `a` half the time, so shadowing and
/// the param/state resolution order are both exercised.
fn gen_agg_expr(gen: &mut Gen, depth: usize) -> IrExpr {
    use casper_ir::expr::AggOp;
    let op = [AggOp::Add, AggOp::Min, AggOp::Max][(gen.next_u64() % 3) as usize];
    let over = match gen.next_u64() % 8 {
        0 => "g",
        1 => "missing",
        _ => "ys",
    };
    let body = if gen.next_u64().is_multiple_of(2) {
        IrExpr::bin(BinOp::Add, IrExpr::var("a"), gen_int_expr(gen, depth - 1))
    } else {
        gen_int_expr(gen, depth - 1)
    };
    IrExpr::Agg {
        op,
        init: Box::new(gen_int_expr(gen, depth - 1)),
        over: over.into(),
        param: "a".into(),
        body: Box::new(body),
    }
}

fn gen_bool_expr(gen: &mut Gen, depth: usize) -> IrExpr {
    if depth == 0 || gen.next_u64() % 100 < 60 {
        let op = [
            BinOp::Lt,
            BinOp::Gt,
            BinOp::Le,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
        ][(gen.next_u64() % 6) as usize];
        let d = depth.saturating_sub(1);
        IrExpr::bin(op, gen_int_expr(gen, d), gen_int_expr(gen, d))
    } else {
        let op = if gen.next_u64().is_multiple_of(2) {
            BinOp::And
        } else {
            BinOp::Or
        };
        IrExpr::bin(
            op,
            gen_bool_expr(gen, depth - 1),
            gen_bool_expr(gen, depth - 1),
        )
    }
}

/// Strategy producing arbitrary `Value` rows — every tag class the
/// buffer distinguishes: inline scalars (including NaN, ±0.0, and raw
/// double bit patterns), empty/unicode/repeated strings, and nested
/// structured values that spill to the boxed arena.
struct ArbRows;

fn arb_rows() -> ArbRows {
    ArbRows
}

fn gen_value(gen: &mut Gen, depth: usize) -> Value {
    let variants = if depth == 0 { 7 } else { 10 };
    match gen.next_u64() % variants {
        0 => Value::Unit,
        1 => Value::Int(gen.next_u64() as i64),
        2 => match gen.next_u64() % 4 {
            0 => Value::Double(f64::NAN),
            1 => Value::Double(-0.0),
            2 => Value::Double((gen.next_u64() % 1000) as f64 / 8.0 - 50.0),
            _ => Value::Double(f64::from_bits(gen.next_u64())),
        },
        3 => Value::Bool(gen.next_u64().is_multiple_of(2)),
        4 => Value::str(""),
        5 | 6 => {
            let words = ["word", "héllo — ünïcode", "a", "bb", "\u{1F600}\u{0301}"];
            Value::str(words[(gen.next_u64() % words.len() as u64) as usize])
        }
        7 => Value::List(
            (0..gen.next_u64() % 4)
                .map(|_| gen_value(gen, depth - 1))
                .collect(),
        ),
        8 => Value::pair(gen_value(gen, depth - 1), gen_value(gen, depth - 1)),
        _ => Value::Map(vec![(gen_value(gen, depth - 1), gen_value(gen, depth - 1))]),
    }
}

impl Strategy for ArbRows {
    type Value = Vec<(Value, Value)>;
    fn sample(&self, gen: &mut Gen) -> Vec<(Value, Value)> {
        (0..gen.next_u64() % 24)
            .map(|_| (gen_value(gen, 2), gen_value(gen, 2)))
            .collect()
    }
}

fn wc_summary() -> ProgramSummary {
    let m = MapLambda::new(
        vec!["w"],
        vec![Emit::unconditional(IrExpr::var("w"), IrExpr::int(1))],
    );
    let expr = MrExpr::Data(DataSource::flat("ws", Type::Str))
        .map(m)
        .reduce(ReduceLambda::binop(BinOp::Add));
    ProgramSummary::single("counts", expr, OutputKind::AssocMap)
}

proptest! {
    /// Arbitrary `Value`s round-trip through `ValueBuf` storage and back
    /// as identity — through every write path the data plane uses:
    /// interned pushes, interned (memoized) cross-buffer copies, and the
    /// shuffle's raw scatter/gather byte moves. Semantic byte accounting
    /// must match the boxed model on every path.
    #[test]
    fn value_buf_roundtrip_is_identity(rows in arb_rows()) {
        use seqlang::buf::ValueBuf;

        let mut buf = ValueBuf::new(2);
        let mut sem = 0u64;
        for (k, v) in &rows {
            buf.push_value(k);
            buf.push_value(v);
            sem += 8 + k.size_bytes() + v.size_bytes();
        }
        prop_assert_eq!(buf.len(), rows.len());
        prop_assert_eq!(buf.sem_bytes(), sem, "semantic bytes diverge from the boxed model");
        prop_assert!(buf.spans_unique(), "interned pushes must keep spans unique");

        // Interned cross-buffer copy (the fused map's span-memoized path)
        // and raw scatter + gather (the shuffle byte-move protocol).
        let mut copied = ValueBuf::new(2);
        let mut scattered = ValueBuf::new(2);
        for row in 0..buf.len() {
            copied.copy_row_from(&buf, row);
            scattered.push_row_raw_from(&buf, row);
        }
        let mut gathered = ValueBuf::new(2);
        gathered.append_raw(&scattered);
        prop_assert_eq!(gathered.sem_bytes(), sem);

        for (row, (k, v)) in rows.iter().enumerate() {
            for (col, expect) in [(0, k), (1, v)] {
                prop_assert_eq!(&buf.value_at(row, col), expect, "push_value roundtrip");
                prop_assert_eq!(&copied.value_at(row, col), expect, "interned copy roundtrip");
                prop_assert_eq!(&gathered.value_at(row, col), expect, "raw shuffle roundtrip");
                // Hash/order fidelity: bucketing and sorting through the
                // buffer match the boxed plane bit-for-bit.
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::hash::Hash::hash(expect, &mut h);
                prop_assert_eq!(
                    buf.cell_hash(row, col),
                    std::hash::Hasher::finish(&h),
                    "cell hash diverges from Value::hash"
                );
                prop_assert!(buf.cells_eq(row, col, &gathered, row, col));
            }
        }
    }

    /// The engine execution of a compiled plan agrees with the IR
    /// reference evaluator on arbitrary integer data.
    #[test]
    fn engine_matches_ir_evaluator_sum(xs in prop::collection::vec(-1000i64..1000, 0..200)) {
        let mut state = Env::new();
        state.set("xs", Value::List(xs.iter().copied().map(Value::Int).collect()));
        state.set("s", Value::Int(0));

        let summary = sum_summary();
        let ir_out = eval_summary(&summary, &state).unwrap();

        let plan = CompiledPlan::new(
            summary,
            vec![CaProperties { commutative: true, associative: true }],
        );
        let ctx = Context::with_parallelism(4, 8);
        let engine_out = plan.execute(&ctx, &state).unwrap();
        prop_assert_eq!(ir_out.get("s"), engine_out.get("s"));
        prop_assert_eq!(
            engine_out.get("s"),
            Some(&Value::Int(xs.iter().sum::<i64>()))
        );
    }

    /// WordCount is permutation-invariant end to end (multiset semantics).
    #[test]
    fn word_count_is_order_insensitive(
        mut words in prop::collection::vec("[a-d]{1,2}", 0..100)
    ) {
        let mk_state = |ws: &[String]| {
            let mut st = Env::new();
            st.set("ws", Value::List(ws.iter().map(Value::str).collect()));
            st.set("counts", Value::Map(vec![]));
            st
        };
        let original = eval_summary(&wc_summary(), &mk_state(&words)).unwrap();
        words.reverse();
        let reversed = eval_summary(&wc_summary(), &mk_state(&words)).unwrap();
        prop_assert_eq!(original.get("counts"), reversed.get("counts"));
    }

    /// reduceByKey results are independent of partitioning.
    #[test]
    fn reduce_by_key_partition_invariant(
        pairs in prop::collection::vec((0i64..10, -50i64..50), 1..300),
        parts in 1usize..20
    ) {
        let c1 = Context::with_parallelism(4, parts);
        let c2 = Context::with_parallelism(4, 1);
        let a = Rdd::parallelize(&c1, pairs.clone())
            .reduce_by_key(|x, y| x + y)
            .collect_sorted();
        let b = Rdd::parallelize(&c2, pairs)
            .reduce_by_key(|x, y| x + y)
            .collect_sorted();
        prop_assert_eq!(a, b);
    }

    /// The cost model's dominance relation is a partial order on random
    /// symbolic costs (reflexive, antisymmetric up to equality).
    #[test]
    fn cost_dominance_is_consistent(base in 0.0f64..500.0, c1 in 0.0f64..300.0) {
        use cost::SymCost;
        let mut a = SymCost::constant(base);
        a.add_term("p1", c1);
        prop_assert!(a.dominates(&a));
        let cheaper = SymCost::constant(base / 2.0);
        let mut expensive = SymCost::constant(base + 1.0);
        expensive.add_term("p1", c1);
        prop_assert!(expensive.dominates(&cheaper));
    }

    /// The compiled evaluator agrees with the tree-walking reference on
    /// arbitrary data — the contract that lets the CEGIS screening layer
    /// run compiled without changing a single verdict.
    #[test]
    fn compiled_evaluator_matches_tree_walk(
        xs in prop::collection::vec(-1000i64..1000, 0..200),
        words in prop::collection::vec("[a-d]{1,2}", 0..100)
    ) {
        use casper_ir::compile::CompiledSummary;

        let mut st = Env::new();
        st.set("xs", Value::List(xs.iter().copied().map(Value::Int).collect()));
        st.set("s", Value::Int(0));
        let summary = sum_summary();
        let compiled = CompiledSummary::compile(&summary);
        prop_assert_eq!(
            eval_summary(&summary, &st).unwrap(),
            compiled.eval(&st).unwrap()
        );

        let mut st2 = Env::new();
        st2.set("ws", Value::List(words.iter().map(Value::str).collect()));
        st2.set("counts", Value::Map(vec![]));
        let wc = wc_summary();
        let compiled_wc = CompiledSummary::compile(&wc);
        prop_assert_eq!(
            eval_summary(&wc, &st2).unwrap(),
            compiled_wc.eval(&st2).unwrap()
        );
    }

    /// Observational-equivalence dedup never skips the summary the
    /// un-deduped serial search finds: across varying bounded-domain
    /// sizes and Φ seeds, the deduped search returns the identical
    /// verified set, accumulates the same counter-examples, and absorbs
    /// screening work one-for-one.
    #[test]
    fn dedup_never_skips_the_undeduped_solution(
        bounded_states in 6usize..24,
        initial_states in 1usize..6,
        which in 0usize..3
    ) {
        use analyzer::identify_fragments;
        use std::sync::Arc;
        use synthesis::{find_summary, FindConfig, FindOutcome};

        let sources = [
            "fn sum(xs: list<int>) -> int {
                let s: int = 0;
                for (x in xs) { s = s + x; }
                return s;
            }",
            "fn cc(xs: list<int>, t: int) -> int {
                let n: int = 0;
                for (x in xs) { if (x > t) { n = n + 1; } }
                return n;
            }",
            "fn mx(xs: list<int>) -> int {
                let m: int = 0;
                for (x in xs) { if (x > m) { m = x; } }
                return m;
            }",
        ];
        let p = Arc::new(seqlang::compile(sources[which]).unwrap());
        let frag = identify_fragments(&p).remove(0);
        let mut base = FindConfig {
            parallelism: 1,
            max_solutions: 2,
            ..FindConfig::default()
        };
        base.synth.bounded_states = bounded_states;
        base.synth.initial_states = initial_states;

        let with = FindConfig { dedup: true, ..base.clone() };
        let without = FindConfig { dedup: false, ..base };
        let accept =
            |_: &casper_ir::mr::ProgramSummary| synthesis::VerifierVerdict::simple(true);
        let (on, r_on) = find_summary(&frag, &accept, &with);
        let (off, r_off) = find_summary(&frag, &accept, &without);
        let (FindOutcome::Found(a), FindOutcome::Found(b)) = (on, off) else {
            panic!("both searches must find summaries");
        };
        prop_assert_eq!(a, b);
        prop_assert_eq!(r_on.counter_examples, r_off.counter_examples);
        prop_assert_eq!(r_on.sent_to_verifier, r_off.sent_to_verifier);
        prop_assert_eq!(r_off.candidates_deduped, 0);
        prop_assert_eq!(
            r_on.candidates_checked + r_on.candidates_deduped,
            r_off.candidates_checked
        );
    }

    /// Fused+compiled plan execution is result-identical to the unfused,
    /// the tree-walking interpreted executor, and both IR evaluators on
    /// arbitrary data — including the empty input.
    #[test]
    fn fused_plan_differential_sum_and_wordcount(
        xs in prop::collection::vec(-1000i64..1000, 0..200),
        words in prop::collection::vec("[a-d]{1,2}", 0..100)
    ) {
        let mut st = Env::new();
        st.set("xs", Value::List(xs.iter().copied().map(Value::Int).collect()));
        st.set("s", Value::Int(0));
        assert_data_plane_agrees(&sum_summary(), vec![ca()], &st);

        let mut st2 = Env::new();
        st2.set("ws", Value::List(words.iter().map(Value::str).collect()));
        st2.set("counts", Value::Map(vec![]));
        assert_data_plane_agrees(&wc_summary(), vec![ca()], &st2);
    }

    /// Differential test over a fused multi-map pipeline (row-wise mean)
    /// whose final λ divides by a free variable: `cols = 0` drives the
    /// error path through every executor at once.
    #[test]
    fn fused_plan_differential_rwm_including_errors(
        rows_data in prop::collection::vec(prop::collection::vec(-50i64..50, 3..4), 0..20),
        cols in 0i64..4
    ) {
        let m1 = MapLambda::new(
            vec!["i", "j", "v"],
            vec![Emit::unconditional(IrExpr::var("i"), IrExpr::var("v"))],
        );
        let m2 = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::unconditional(
                IrExpr::var("k"),
                IrExpr::bin(BinOp::Div, IrExpr::var("v"), IrExpr::var("cols")),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed_2d("mat", Type::Int))
            .map(m1)
            .reduce(ReduceLambda::binop(BinOp::Add))
            .map(m2);
        let summary = ProgramSummary::single(
            "m",
            expr,
            OutputKind::AssocArray { len_var: "rows".into() },
        );
        let mut st = Env::new();
        let n = rows_data.len();
        st.set(
            "mat",
            Value::Array(
                rows_data
                    .iter()
                    .map(|r| Value::Array(r.iter().copied().map(Value::Int).collect()))
                    .collect(),
            ),
        );
        st.set("rows", Value::Int(n as i64));
        st.set("cols", Value::Int(cols));
        st.set("m", Value::Array(vec![Value::Int(0); n]));
        assert_data_plane_agrees(&summary, vec![ca()], &st);
    }

    /// Differential test across a join pipeline and a non-CA
    /// (groupByKey + ordered fold) reduce.
    #[test]
    fn fused_plan_differential_join_and_non_ca(
        xs in prop::collection::vec(-100i64..100, 0..40),
        ys in prop::collection::vec(-100i64..100, 0..40)
    ) {
        // Dot product over joined indexed sources.
        let m = MapLambda::new(
            vec!["k", "v"],
            vec![Emit::unconditional(
                IrExpr::int(0),
                IrExpr::bin(
                    BinOp::Mul,
                    IrExpr::tget(IrExpr::var("v"), 0),
                    IrExpr::tget(IrExpr::var("v"), 1),
                ),
            )],
        );
        let expr = MrExpr::Data(DataSource::indexed("xs", Type::Int))
            .join(MrExpr::Data(DataSource::indexed("ys", Type::Int)))
            .map(m)
            .reduce(ReduceLambda::binop(BinOp::Add));
        let summary = ProgramSummary::single("dot", expr, OutputKind::Scalar);
        let mut st = Env::new();
        st.set("xs", Value::Array(xs.iter().copied().map(Value::Int).collect()));
        st.set("ys", Value::Array(ys.iter().copied().map(Value::Int).collect()));
        st.set("dot", Value::Int(0));
        assert_data_plane_agrees(&summary, vec![ca()], &st);

        // Keep-first reducer: non-commutative, must fold in arrival order.
        let m2 = MapLambda::new(
            vec!["x"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
        );
        let expr2 = MrExpr::Data(DataSource::flat("zs", Type::Int))
            .map(m2)
            .reduce(ReduceLambda::new(IrExpr::var("v1")));
        let summary2 = ProgramSummary::single("first", expr2, OutputKind::Scalar);
        let mut st2 = Env::new();
        st2.set("zs", Value::List(xs.iter().copied().map(Value::Int).collect()));
        st2.set("first", Value::Int(-7));
        assert_data_plane_agrees(
            &summary2,
            vec![CaProperties { commutative: false, associative: true }],
            &st2,
        );
    }

    /// The verification stack's differential contract: the compiled,
    /// parallel verifier and the tree-walking golden reference produce
    /// identical verdicts, counter-examples, state counts, and reduce
    /// properties over the same basis — across domain sizes (including
    /// the empty domain), permutation counts, worker counts, and
    /// candidate shapes (correct, refuted, and error-faulting).
    #[test]
    fn compiled_verifier_matches_tree_walk_verdicts(
        states in 0usize..16,
        permutations in 0usize..3,
        workers in 1usize..5,
        which in 0usize..4
    ) {
        use analyzer::identify_fragments;
        use std::sync::Arc;
        use verifier::{Verifier, VerifyConfig};

        let program = Arc::new(
            seqlang::compile(
                "fn sum(xs: list<int>) -> int {
                    let s: int = 0;
                    for (x in xs) { s = s + x; }
                    return s;
                }",
            )
            .unwrap(),
        );
        let fragment = identify_fragments(&program).remove(0);
        let m = || MapLambda::new(
            vec!["x"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
        );
        let mk = |r: ReduceLambda| {
            let expr = MrExpr::Data(DataSource::flat("xs", Type::Int)).map(m()).reduce(r);
            ProgramSummary::single("s", expr, OutputKind::Scalar)
        };
        let candidate = match which {
            // Correct.
            0 => mk(ReduceLambda::binop(BinOp::Add)),
            // Refuted (keep-last).
            1 => mk(ReduceLambda::new(IrExpr::var("v2"))),
            // Faults on in-domain states (division by reduce input).
            2 => mk(ReduceLambda::new(IrExpr::bin(
                BinOp::Div,
                IrExpr::var("v1"),
                IrExpr::var("v2"),
            ))),
            // Faults in the map (division by the element).
            _ => {
                let lam = MapLambda::new(
                    vec!["x"],
                    vec![Emit::unconditional(
                        IrExpr::int(0),
                        IrExpr::bin(BinOp::Div, IrExpr::int(1), IrExpr::var("x")),
                    )],
                );
                let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
                    .map(lam)
                    .reduce(ReduceLambda::binop(BinOp::Add));
                ProgramSummary::single("s", expr, OutputKind::Scalar)
            }
        };
        let config = VerifyConfig {
            states,
            permutations,
            parallelism: workers,
            // Small domains would otherwise fall back to the serial
            // walk; force the parallel checker so the worker dimension
            // is genuinely exercised.
            parallel_min_obligations: 0,
            ..VerifyConfig::default()
        };
        let verifier = Verifier::new(&fragment, config);
        let compiled = verifier.verify_uncached(&candidate);
        let interpreted = verifier.verify_interpreted(&candidate);
        prop_assert_eq!(compiled.verified, interpreted.verified);
        prop_assert_eq!(compiled.states_checked, interpreted.states_checked);
        prop_assert_eq!(compiled.counter_example, interpreted.counter_example);
        prop_assert_eq!(compiled.reduce_properties, interpreted.reduce_properties);
        prop_assert_eq!(compiled.reason, interpreted.reason);
        if states == 0 {
            // Empty domain: trivially verified with zero states checked —
            // unless the reducer-input harvest faults (which both
            // verifiers must agree on, and `verified` equality above
            // already locks in).
            prop_assert_eq!(compiled.states_checked, 0);
        }
    }

    /// Engine byte accounting is additive under scaling.
    #[test]
    fn stats_scaling_is_monotone(records in 1u64..100_000, f in 1.0f64..100.0) {
        use mapreduce::{JobStats, StageKind, StageStats};
        let mut j = JobStats::default();
        let mut s = StageStats::new(StageKind::Map, "m");
        s.records_in = records;
        s.bytes_out = records * 12;
        j.stages.push(s);
        let scaled = j.scaled(f);
        prop_assert!(scaled.stages[0].records_in >= j.stages[0].records_in);
        prop_assert!(
            (scaled.stages[0].bytes_out as f64 - j.stages[0].bytes_out as f64 * f).abs()
                <= f
        );
    }

    /// The bytecode VM's differential contract at the expression level:
    /// on arbitrary well-typed expressions, the raw chunk, the
    /// bytecode-backed compiled reducer, the closure-tree-backed
    /// compiled reducer, and the tree-walking `IrExpr::eval` all agree
    /// on values, on whether evaluation faults, and on the exact error
    /// message (error identity, not just error presence).
    #[test]
    fn bytecode_vm_matches_closure_tree_and_tree_walk(
        e in arb_int_expr(),
        v1 in -9i64..9,
        v2 in -9i64..9,
        g in -9i64..9,
        ys in prop::collection::vec(-9i64..9, 0..5),
    ) {
        use casper_ir::bytecode::Chunk;
        use casper_ir::compile::CompiledReduceLambda;
        use casper_ir::Engine;

        let ys_val = Value::List(ys.iter().copied().map(Value::Int).collect());
        let mut state = Env::new();
        state.set("g", Value::Int(g));
        state.set("ys", ys_val.clone());

        let chunk = Chunk::compile(&e, &["v1", "v2"]);
        let vm = chunk
            .run(&[Value::Int(v1), Value::Int(v2)], &state)
            .map_err(|err| err.to_string());

        let lambda = ReduceLambda::new(e.clone());
        let compiled_vm = CompiledReduceLambda::compile_with(&lambda, Engine::Bytecode)
            .combine(Value::Int(v1), Value::Int(v2), &state)
            .map_err(|err| err.to_string());
        let compiled_tree = CompiledReduceLambda::compile_with(&lambda, Engine::ClosureTree)
            .combine(Value::Int(v1), Value::Int(v2), &state)
            .map_err(|err| err.to_string());

        let mut env = Env::new();
        env.set("g", Value::Int(g));
        env.set("ys", ys_val);
        env.set("v1", Value::Int(v1));
        env.set("v2", Value::Int(v2));
        let walk = e.eval(&env).map_err(|err| err.to_string());

        prop_assert_eq!(&vm, &compiled_vm, "raw chunk vs compiled-VM reducer");
        prop_assert_eq!(&vm, &compiled_tree, "bytecode vs closure-tree");
        prop_assert_eq!(&vm, &walk, "bytecode vs tree-walk");
    }

    /// The same contract one level up: arbitrary map/reduce summaries
    /// (generated guard, value, and reduce-body expressions) evaluate
    /// identically under `CompiledSummary` with the bytecode engine,
    /// with the closure-tree engine, and under the tree-walking
    /// reference evaluator — outputs and error strings both.
    #[test]
    fn summary_engines_agree_on_arbitrary_pipelines(
        guard in arb_bool_expr(),
        val in arb_int_expr(),
        body in arb_int_expr(),
        xs in prop::collection::vec(-9i64..9, 0..8),
        ys in prop::collection::vec(-9i64..9, 0..5),
        g in -9i64..9,
    ) {
        use casper_ir::compile::CompiledSummary;
        use casper_ir::Engine;

        // The map λ over an indexed source binds (index, element) to
        // (v1, v2), so the generated expressions are closed over the
        // same names as the reduce body. Keys group by index mod 3 to
        // exercise multi-group reduction without introducing faults in
        // the key position.
        let key = IrExpr::bin(BinOp::Mod, IrExpr::var("v1"), IrExpr::int(3));
        let m = MapLambda::new(
            vec!["v1", "v2"],
            vec![Emit::guarded(guard, key, val)],
        );
        let expr = MrExpr::Data(DataSource::indexed("xs", Type::Int))
            .map(m)
            .reduce(ReduceLambda::new(body));
        let summary = ProgramSummary::single("out", expr, OutputKind::AssocMap);

        let mut state = Env::new();
        state.set("xs", Value::Array(xs.into_iter().map(Value::Int).collect()));
        state.set("ys", Value::List(ys.into_iter().map(Value::Int).collect()));
        state.set("g", Value::Int(g));
        state.set("out", Value::Map(vec![]));

        let vm = CompiledSummary::compile_with(&summary, Engine::Bytecode)
            .eval(&state)
            .map_err(|err| err.to_string());
        let tree = CompiledSummary::compile_with(&summary, Engine::ClosureTree)
            .eval(&state)
            .map_err(|err| err.to_string());
        let walk = eval_summary(&summary, &state).map_err(|err| err.to_string());

        prop_assert_eq!(&vm, &tree, "bytecode vs closure-tree summary");
        prop_assert_eq!(&vm, &walk, "bytecode vs tree-walk summary");
    }
}
