//! Property-based tests over the core invariants, spanning crates:
//! the IR evaluator vs the engine, the verification conditions, and the
//! engine's shuffle determinism.

use casper_ir::eval::eval_summary;
use casper_ir::expr::IrExpr;
use casper_ir::lambda::{Emit, MapLambda, ReduceLambda};
use casper_ir::mr::{DataSource, MrExpr, OutputKind, ProgramSummary};
use codegen::CompiledPlan;
use mapreduce::rdd::Rdd;
use mapreduce::Context;
use proptest::prelude::*;
use seqlang::ast::BinOp;
use seqlang::env::Env;
use seqlang::ty::Type;
use seqlang::value::Value;
use verifier::CaProperties;

fn sum_summary() -> ProgramSummary {
    let m = MapLambda::new(
        vec!["x"],
        vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
    );
    let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
        .map(m)
        .reduce(ReduceLambda::binop(BinOp::Add));
    ProgramSummary::single("s", expr, OutputKind::Scalar)
}

fn wc_summary() -> ProgramSummary {
    let m = MapLambda::new(
        vec!["w"],
        vec![Emit::unconditional(IrExpr::var("w"), IrExpr::int(1))],
    );
    let expr = MrExpr::Data(DataSource::flat("ws", Type::Str))
        .map(m)
        .reduce(ReduceLambda::binop(BinOp::Add));
    ProgramSummary::single("counts", expr, OutputKind::AssocMap)
}

proptest! {
    /// The engine execution of a compiled plan agrees with the IR
    /// reference evaluator on arbitrary integer data.
    #[test]
    fn engine_matches_ir_evaluator_sum(xs in prop::collection::vec(-1000i64..1000, 0..200)) {
        let mut state = Env::new();
        state.set("xs", Value::List(xs.iter().copied().map(Value::Int).collect()));
        state.set("s", Value::Int(0));

        let summary = sum_summary();
        let ir_out = eval_summary(&summary, &state).unwrap();

        let plan = CompiledPlan::new(
            summary,
            vec![CaProperties { commutative: true, associative: true }],
        );
        let ctx = Context::with_parallelism(4, 8);
        let engine_out = plan.execute(&ctx, &state).unwrap();
        prop_assert_eq!(ir_out.get("s"), engine_out.get("s"));
        prop_assert_eq!(
            engine_out.get("s"),
            Some(&Value::Int(xs.iter().sum::<i64>()))
        );
    }

    /// WordCount is permutation-invariant end to end (multiset semantics).
    #[test]
    fn word_count_is_order_insensitive(
        mut words in prop::collection::vec("[a-d]{1,2}", 0..100)
    ) {
        let mk_state = |ws: &[String]| {
            let mut st = Env::new();
            st.set("ws", Value::List(ws.iter().map(Value::str).collect()));
            st.set("counts", Value::Map(vec![]));
            st
        };
        let original = eval_summary(&wc_summary(), &mk_state(&words)).unwrap();
        words.reverse();
        let reversed = eval_summary(&wc_summary(), &mk_state(&words)).unwrap();
        prop_assert_eq!(original.get("counts"), reversed.get("counts"));
    }

    /// reduceByKey results are independent of partitioning.
    #[test]
    fn reduce_by_key_partition_invariant(
        pairs in prop::collection::vec((0i64..10, -50i64..50), 1..300),
        parts in 1usize..20
    ) {
        let c1 = Context::with_parallelism(4, parts);
        let c2 = Context::with_parallelism(4, 1);
        let a = Rdd::parallelize(&c1, pairs.clone())
            .reduce_by_key(|x, y| x + y)
            .collect_sorted();
        let b = Rdd::parallelize(&c2, pairs)
            .reduce_by_key(|x, y| x + y)
            .collect_sorted();
        prop_assert_eq!(a, b);
    }

    /// The cost model's dominance relation is a partial order on random
    /// symbolic costs (reflexive, antisymmetric up to equality).
    #[test]
    fn cost_dominance_is_consistent(base in 0.0f64..500.0, c1 in 0.0f64..300.0) {
        use cost::SymCost;
        let mut a = SymCost::constant(base);
        a.add_term("p1", c1);
        prop_assert!(a.dominates(&a));
        let cheaper = SymCost::constant(base / 2.0);
        let mut expensive = SymCost::constant(base + 1.0);
        expensive.add_term("p1", c1);
        prop_assert!(expensive.dominates(&cheaper));
    }

    /// The compiled evaluator agrees with the tree-walking reference on
    /// arbitrary data — the contract that lets the CEGIS screening layer
    /// run compiled without changing a single verdict.
    #[test]
    fn compiled_evaluator_matches_tree_walk(
        xs in prop::collection::vec(-1000i64..1000, 0..200),
        words in prop::collection::vec("[a-d]{1,2}", 0..100)
    ) {
        use casper_ir::compile::CompiledSummary;

        let mut st = Env::new();
        st.set("xs", Value::List(xs.iter().copied().map(Value::Int).collect()));
        st.set("s", Value::Int(0));
        let summary = sum_summary();
        let compiled = CompiledSummary::compile(&summary);
        prop_assert_eq!(
            eval_summary(&summary, &st).unwrap(),
            compiled.eval(&st).unwrap()
        );

        let mut st2 = Env::new();
        st2.set("ws", Value::List(words.iter().map(Value::str).collect()));
        st2.set("counts", Value::Map(vec![]));
        let wc = wc_summary();
        let compiled_wc = CompiledSummary::compile(&wc);
        prop_assert_eq!(
            eval_summary(&wc, &st2).unwrap(),
            compiled_wc.eval(&st2).unwrap()
        );
    }

    /// Observational-equivalence dedup never skips the summary the
    /// un-deduped serial search finds: across varying bounded-domain
    /// sizes and Φ seeds, the deduped search returns the identical
    /// verified set, accumulates the same counter-examples, and absorbs
    /// screening work one-for-one.
    #[test]
    fn dedup_never_skips_the_undeduped_solution(
        bounded_states in 6usize..24,
        initial_states in 1usize..6,
        which in 0usize..3
    ) {
        use analyzer::identify_fragments;
        use std::sync::Arc;
        use synthesis::{find_summary, FindConfig, FindOutcome};

        let sources = [
            "fn sum(xs: list<int>) -> int {
                let s: int = 0;
                for (x in xs) { s = s + x; }
                return s;
            }",
            "fn cc(xs: list<int>, t: int) -> int {
                let n: int = 0;
                for (x in xs) { if (x > t) { n = n + 1; } }
                return n;
            }",
            "fn mx(xs: list<int>) -> int {
                let m: int = 0;
                for (x in xs) { if (x > m) { m = x; } }
                return m;
            }",
        ];
        let p = Arc::new(seqlang::compile(sources[which]).unwrap());
        let frag = identify_fragments(&p).remove(0);
        let mut base = FindConfig {
            parallelism: 1,
            max_solutions: 2,
            ..FindConfig::default()
        };
        base.synth.bounded_states = bounded_states;
        base.synth.initial_states = initial_states;

        let with = FindConfig { dedup: true, ..base.clone() };
        let without = FindConfig { dedup: false, ..base };
        let accept = |_: &casper_ir::mr::ProgramSummary| true;
        let (on, r_on) = find_summary(&frag, &accept, &with);
        let (off, r_off) = find_summary(&frag, &accept, &without);
        let (FindOutcome::Found(a), FindOutcome::Found(b)) = (on, off) else {
            panic!("both searches must find summaries");
        };
        prop_assert_eq!(a, b);
        prop_assert_eq!(r_on.counter_examples, r_off.counter_examples);
        prop_assert_eq!(r_on.sent_to_verifier, r_off.sent_to_verifier);
        prop_assert_eq!(r_off.candidates_deduped, 0);
        prop_assert_eq!(
            r_on.candidates_checked + r_on.candidates_deduped,
            r_off.candidates_checked
        );
    }

    /// Engine byte accounting is additive under scaling.
    #[test]
    fn stats_scaling_is_monotone(records in 1u64..100_000, f in 1.0f64..100.0) {
        use mapreduce::{JobStats, StageKind, StageStats};
        let mut j = JobStats::default();
        let mut s = StageStats::new(StageKind::Map, "m");
        s.records_in = records;
        s.bytes_out = records * 12;
        j.stages.push(s);
        let scaled = j.scaled(f);
        prop_assert!(scaled.stages[0].records_in >= j.stages[0].records_in);
        prop_assert!(
            (scaled.stages[0].bytes_out as f64 - j.stages[0].bytes_out as f64 * f).abs()
                <= f
        );
    }
}
