//! Regression guard for the parallel synthesis driver: translating the
//! same multi-fragment program at `parallelism = 1` and `parallelism = N`
//! must produce identical per-fragment outcomes — same summaries, same
//! generated code, same search-counter trace. This is the determinism
//! contract `synthesis::cegis`'s chunk-replay scheme promises.

use std::time::Duration;

use casper::{Casper, CasperConfig, FragmentOutcome, TranslationReport};
use casper_ir::pretty::pretty_summary;
use suites::MULTI_FRAGMENT_SRC as SUITE_SRC;
use synthesis::FindConfig;

fn translate(workers: usize) -> TranslationReport {
    translate_with_engine(workers, casper_ir::Engine::default())
}

fn translate_with_engine(workers: usize, engine: casper_ir::Engine) -> TranslationReport {
    translate_src(SUITE_SRC, workers, engine)
}

fn translate_src(src: &str, workers: usize, engine: casper_ir::Engine) -> TranslationReport {
    // A generous timeout keeps the only legitimate source of
    // serial/parallel divergence — deadline truncation — out of play.
    let config = CasperConfig {
        find: FindConfig {
            timeout: Duration::from_secs(300),
            ..FindConfig::default()
        },
        ..CasperConfig::default()
    }
    .with_parallelism(workers)
    .with_engine(engine);
    Casper::new(config)
        .translate_source(src)
        .expect("suite source compiles")
}

/// A comparable fingerprint of everything outcome-relevant in a
/// fragment report.
fn fingerprint(report: &TranslationReport) -> Vec<String> {
    report
        .fragments
        .iter()
        .map(|f| match &f.outcome {
            FragmentOutcome::Translated {
                summaries,
                code,
                dialect,
                ..
            } => {
                let pretty: Vec<String> = summaries.iter().map(pretty_summary).collect();
                format!(
                    "{} translated [{:?}] summaries={} code={}",
                    f.id,
                    dialect,
                    pretty.join(" | "),
                    code,
                )
            }
            FragmentOutcome::Failed(reason) => {
                format!("{} failed: {}", f.id, reason.describe())
            }
        })
        .collect()
}

#[test]
fn parallel_and_serial_translations_are_identical() {
    let serial = translate(1);
    let parallel = translate(4);

    assert_eq!(serial.fragments.len(), 6, "six fragments identified");
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));

    // The search traces must match counter-for-counter, not just the
    // final artifacts: the parallel screener replays the sequential φ
    // evolution — including every observational-dedup decision — exactly.
    for (s, p) in serial.fragments.iter().zip(&parallel.fragments) {
        assert_eq!(
            s.search.candidates_generated, p.search.candidates_generated,
            "{}: candidates_generated diverged",
            s.id
        );
        assert_eq!(
            s.search.candidates_deduped, p.search.candidates_deduped,
            "{}: candidates_deduped diverged",
            s.id
        );
        assert_eq!(
            s.search.candidates_checked, p.search.candidates_checked,
            "{}: candidates_checked diverged",
            s.id
        );
        assert_eq!(
            s.search.counter_examples, p.search.counter_examples,
            "{}: counter_examples diverged",
            s.id
        );
        assert_eq!(
            s.search.sent_to_verifier, p.search.sent_to_verifier,
            "{}: sent_to_verifier diverged",
            s.id
        );
        assert_eq!(
            s.search.classes_explored, p.search.classes_explored,
            "{}: classes_explored diverged",
            s.id
        );
        assert_eq!(
            s.search.verdict_cache_hits, p.search.verdict_cache_hits,
            "{}: search verdict_cache_hits diverged",
            s.id
        );
        assert_eq!(
            s.search.verdict_cache_misses, p.search.verdict_cache_misses,
            "{}: search verdict_cache_misses diverged",
            s.id
        );
        assert_eq!(
            s.verdict_cache_hits, p.verdict_cache_hits,
            "{}: fragment verdict_cache_hits diverged",
            s.id
        );
        assert_eq!(
            s.verdict_cache_misses, p.verdict_cache_misses,
            "{}: fragment verdict_cache_misses diverged",
            s.id
        );
        assert_eq!(
            s.search.candidates_generated,
            s.search.candidates_checked + s.search.candidates_deduped,
            "{}: generated must equal checked + deduped",
            s.id
        );
    }

    // The dedup layer must actually absorb work somewhere in the suite
    // (the acceptance bar: ratio > 0 on at least one suite grammar).
    assert!(
        serial.total_deduped() > 0,
        "no fragment produced observational duplicates"
    );
    assert!(serial.dedup_ratio() > 0.0);
    assert_eq!(
        serial.total_generated(),
        serial.total_screened() + serial.total_deduped()
    );

    // The verdict cache must absorb the pipeline's property-harvesting
    // re-verifications (every kept summary is verified once by the
    // search, then looked up), at any worker count.
    assert!(
        serial.total_verdict_cache_hits() > 0,
        "harvest re-verification must hit the verdict cache"
    );
    assert!(serial.verdict_cache_hit_ratio() > 0.0);
}

/// The rebuilt verification stack's determinism contract: verdicts, the
/// admitted counter-example, `states_checked`, reduce properties, the
/// proof transcript, and the verdict-cache counters are bit-identical at
/// any worker count — and the compiled verifier agrees exactly with the
/// tree-walking golden reference over the same basis.
#[test]
fn verifier_verdicts_and_counters_identical_across_worker_counts() {
    use analyzer::identify_fragments;
    use casper_ir::expr::IrExpr;
    use casper_ir::lambda::{Emit, MapLambda, ReduceLambda};
    use casper_ir::mr::{DataSource, MrExpr, OutputKind, ProgramSummary};
    use seqlang::ast::BinOp;
    use seqlang::ty::Type;
    use std::sync::Arc;
    use verifier::{Verifier, VerifyConfig};

    let program = Arc::new(
        seqlang::compile(
            "fn sum(xs: list<int>) -> int {
                let s: int = 0;
                for (x in xs) { s = s + x; }
                return s;
            }",
        )
        .unwrap(),
    );
    let fragment = identify_fragments(&program).remove(0);

    let map_identity = || {
        MapLambda::new(
            vec!["x"],
            vec![Emit::unconditional(IrExpr::int(0), IrExpr::var("x"))],
        )
    };
    let mk = |reduce: ReduceLambda| {
        let expr = MrExpr::Data(DataSource::flat("xs", Type::Int))
            .map(map_identity())
            .reduce(reduce);
        ProgramSummary::single("s", expr, OutputKind::Scalar)
    };
    // A verified candidate, a refuted one, and a faulting one.
    let candidates = vec![
        mk(ReduceLambda::binop(BinOp::Add)),
        mk(ReduceLambda::new(IrExpr::var("v2"))),
        mk(ReduceLambda::new(IrExpr::bin(
            BinOp::Div,
            IrExpr::var("v1"),
            IrExpr::var("v2"),
        ))),
    ];

    let reference = Verifier::new(
        &fragment,
        VerifyConfig {
            parallelism: 1,
            ..VerifyConfig::default()
        },
    );
    // Same call sequence against the reference: each candidate twice.
    let mut expected = Vec::new();
    for cand in &candidates {
        expected.push(reference.verify(cand));
        expected.push(reference.verify(cand));
    }

    for workers in [2, 4, 8] {
        let verifier = Verifier::new(
            &fragment,
            VerifyConfig {
                parallelism: workers,
                // Force the parallel checker regardless of basis size.
                parallel_min_obligations: 0,
                ..VerifyConfig::default()
            },
        );
        let mut got = Vec::new();
        for cand in &candidates {
            got.push(verifier.verify(cand));
            got.push(verifier.verify(cand));
        }
        for (e, g) in expected.iter().zip(&got) {
            assert_eq!(e.result.verified, g.result.verified, "verdict diverged");
            assert_eq!(e.result.states_checked, g.result.states_checked);
            assert_eq!(e.result.counter_example, g.result.counter_example);
            assert_eq!(e.result.reduce_properties, g.result.reduce_properties);
            assert_eq!(e.result.reason, g.result.reason);
            assert_eq!(e.result.proof.text(), g.result.proof.text());
            assert_eq!(e.cache_hit, g.cache_hit, "cache decision diverged");
        }
        assert_eq!(reference.cache_hits(), verifier.cache_hits());
        assert_eq!(reference.cache_misses(), verifier.cache_misses());

        // Compiled vs tree-walking reference over the same basis.
        for cand in &candidates {
            let compiled = verifier.verify_uncached(cand);
            let interpreted = verifier.verify_interpreted(cand);
            assert_eq!(compiled.verified, interpreted.verified);
            assert_eq!(compiled.states_checked, interpreted.states_checked);
            assert_eq!(compiled.counter_example, interpreted.counter_example);
            assert_eq!(compiled.reduce_properties, interpreted.reduce_properties);
        }
    }

    // Engine ablation: the closure-tree backend must replay the VM
    // reference bit-for-bit — verdicts, counter-examples, state counts,
    // reduce properties, proof transcripts, and cache decisions — at any
    // worker count. The default engine above is the bytecode VM.
    assert_eq!(casper_ir::Engine::default().name(), "bytecode");
    for workers in [1, 4] {
        let tree = Verifier::new(
            &fragment,
            VerifyConfig {
                parallelism: workers,
                parallel_min_obligations: 0,
                engine: casper_ir::Engine::ClosureTree,
                ..VerifyConfig::default()
            },
        );
        let mut got = Vec::new();
        for cand in &candidates {
            got.push(tree.verify(cand));
            got.push(tree.verify(cand));
        }
        for (e, g) in expected.iter().zip(&got) {
            assert_eq!(
                e.result.verified, g.result.verified,
                "engine verdict diverged"
            );
            assert_eq!(e.result.states_checked, g.result.states_checked);
            assert_eq!(e.result.counter_example, g.result.counter_example);
            assert_eq!(e.result.reduce_properties, g.result.reduce_properties);
            assert_eq!(e.result.reason, g.result.reason);
            assert_eq!(e.result.proof.text(), g.result.proof.text());
            assert_eq!(e.cache_hit, g.cache_hit, "engine cache decision diverged");
        }
    }
}

/// Full-pipeline engine ablation: translating the whole suite with the
/// bytecode VM (the default) and with the closure-tree backend must
/// produce identical artifacts and search traces — the VM changes how
/// candidates are evaluated, never what the pipeline concludes — and the
/// per-report engine label must record which backend ran.
#[test]
fn bytecode_and_closure_tree_translations_are_identical() {
    let vm = translate(1);
    assert_eq!(vm.engine(), "bytecode", "VM must be the default engine");

    for workers in [1, 4] {
        let tree = translate_with_engine(workers, casper_ir::Engine::ClosureTree);
        assert_eq!(tree.engine(), "closure-tree");
        assert_eq!(fingerprint(&vm), fingerprint(&tree));
        for (v, t) in vm.fragments.iter().zip(&tree.fragments) {
            assert_eq!(
                v.search.candidates_generated, t.search.candidates_generated,
                "{}: candidates_generated diverged across engines",
                v.id
            );
            assert_eq!(
                v.search.candidates_deduped, t.search.candidates_deduped,
                "{}: candidates_deduped diverged across engines",
                v.id
            );
            assert_eq!(
                v.search.counter_examples, t.search.counter_examples,
                "{}: counter_examples diverged across engines",
                v.id
            );
            assert_eq!(
                v.search.sent_to_verifier, t.search.sent_to_verifier,
                "{}: sent_to_verifier diverged across engines",
                v.id
            );
        }
    }
}

/// The fused execution data plane must be deterministic in everything
/// the stats layer counts: executing every translated suite fragment at
/// different engine worker counts yields identical outputs AND identical
/// per-stage counters (records in/out, bytes emitted, bytes shuffled),
/// and fusion must not change what crosses the shuffle relative to the
/// tree-walking per-operator executor.
#[test]
fn fused_stage_stats_deterministic_and_shuffle_preserving() {
    use casper_ir::eval::eval_summary;
    use mapreduce::Context;
    use seqlang::env::Env;
    use seqlang::value::Value;

    let report = translate(2);

    // One state covering every fragment's inputs and pre-loop outputs.
    let mut state = Env::new();
    state.set(
        "xs",
        Value::List((0..200).map(|i| Value::Int((i * 7 % 83) - 41)).collect()),
    );
    state.set(
        "words",
        Value::List(
            (0..150)
                .map(|i| Value::str(format!("w{}", i % 13)))
                .collect(),
        ),
    );
    state.set("t", Value::Int(3));
    state.set("s", Value::Int(0));
    state.set("m", Value::Int(0));
    state.set("n", Value::Int(0));
    state.set("f", Value::Bool(false));
    state.set("q", Value::Int(0));
    state.set("counts", Value::Map(vec![]));

    let mut fragments_executed = 0usize;
    for frag in &report.fragments {
        let FragmentOutcome::Translated {
            program, summaries, ..
        } = &frag.outcome
        else {
            continue;
        };
        for variant in &program.variants {
            let plan = &variant.plan;
            // Same partition count, different worker counts: outputs and
            // every stats counter must be bit-identical.
            let serial_ctx = Context::with_parallelism(1, 8);
            let parallel_ctx = Context::with_parallelism(4, 8);
            let serial_out = plan.execute(&serial_ctx, &state).expect("serial exec");
            let parallel_out = plan.execute(&parallel_ctx, &state).expect("parallel exec");
            assert_eq!(
                serial_out, parallel_out,
                "{}/{}: fused outputs diverge across worker counts",
                frag.id, variant.name
            );
            assert_eq!(
                serial_ctx.stats(),
                parallel_ctx.stats(),
                "{}/{}: fused stage stats diverge across worker counts",
                frag.id,
                variant.name
            );

            // Fusion must not change shuffle volume or shuffle count
            // relative to the per-operator interpreted executor, and the
            // outputs must be identical to the golden reference.
            let interp_ctx = Context::with_parallelism(4, 8);
            let interp_out = plan
                .execute_interpreted(&interp_ctx, &state)
                .expect("interpreted exec");
            assert_eq!(
                serial_out, interp_out,
                "{}/{}: fused vs interpreted outputs diverge",
                frag.id, variant.name
            );
            let fused_stats = serial_ctx.stats();
            let interp_stats = interp_ctx.stats();
            assert_eq!(
                fused_stats.total_shuffled_bytes(),
                interp_stats.total_shuffled_bytes(),
                "{}/{}: fusion changed shuffle bytes",
                frag.id,
                variant.name
            );
            assert_eq!(
                fused_stats.shuffle_count(),
                interp_stats.shuffle_count(),
                "{}/{}: fusion changed shuffle count",
                frag.id,
                variant.name
            );
        }
        // The engine result agrees with the IR reference evaluator on the
        // best summary.
        let ir_out = eval_summary(&summaries[0], &state).expect("IR eval");
        let ctx = Context::with_parallelism(4, 8);
        let engine_out = program.variants[0].plan.execute(&ctx, &state).unwrap();
        for (var, val) in ir_out.iter() {
            match val {
                // Engine collects maps key-sorted; the IR evaluator keeps
                // first-appearance order — compare as multisets.
                Value::Map(entries) => {
                    let mut a = entries.clone();
                    a.sort();
                    let Some(Value::Map(b)) = engine_out.get(var) else {
                        panic!("{}: `{var}` missing or not a map", frag.id);
                    };
                    let mut b = b.clone();
                    b.sort();
                    assert_eq!(a, b, "{}: `{var}` diverges", frag.id);
                }
                other => assert_eq!(
                    Some(other),
                    engine_out.get(var),
                    "{}: `{var}` diverges",
                    frag.id
                ),
            }
        }
        fragments_executed += 1;
    }
    assert_eq!(fragments_executed, 6, "all six suite fragments must run");
}

/// The buffered data plane against its boxed golden reference: every
/// translated suite variant must produce bit-identical outputs from the
/// columnar executor at worker counts 1/2/4/8 and from the boxed
/// executor — the differential contract that lets the byte-moving data
/// plane replace `Vec<Value>` partitions without a semantic risk.
#[test]
fn buffered_and_boxed_planes_bit_identical_across_workers() {
    use mapreduce::Context;
    use seqlang::env::Env;
    use seqlang::value::Value;

    let report = translate(2);
    let mut state = Env::new();
    state.set(
        "xs",
        Value::List((0..200).map(|i| Value::Int((i * 7 % 83) - 41)).collect()),
    );
    state.set(
        "words",
        Value::List(
            (0..150)
                .map(|i| Value::str(format!("w{}", i % 13)))
                .collect(),
        ),
    );
    state.set("t", Value::Int(3));
    state.set("s", Value::Int(0));
    state.set("m", Value::Int(0));
    state.set("n", Value::Int(0));
    state.set("f", Value::Bool(false));
    state.set("q", Value::Int(0));
    state.set("counts", Value::Map(vec![]));

    let mut variants_checked = 0usize;
    for frag in &report.fragments {
        let FragmentOutcome::Translated { program, .. } = &frag.outcome else {
            continue;
        };
        for variant in &program.variants {
            let plan = &variant.plan;
            let bctx = Context::with_parallelism(2, 8);
            let boxed = plan.execute_boxed(&bctx, &state).expect("boxed exec");
            for workers in [1, 2, 4, 8] {
                let ctx = Context::with_parallelism(workers, 8);
                let buffered = plan.execute(&ctx, &state).expect("buffered exec");
                assert_eq!(
                    buffered, boxed,
                    "{}/{}: buffered diverges from boxed at {workers} workers",
                    frag.id, variant.name
                );
            }
            variants_checked += 1;
        }
    }
    assert!(variants_checked >= 6, "all suite variants must be swept");
}

/// The determinism contract extended to the post-paper suites: the
/// nested-aggregate and windowed fragments of `sessionize` and
/// `clickstream` must translate to bit-identical artifacts across both
/// expression engines and worker counts 1/2/4/8, and the fused data
/// plane must agree with the per-operator interpreted executor (outputs
/// and shuffle accounting) on benchmark-generated data.
#[test]
fn extension_suite_fragments_consistent_across_engines_and_workers() {
    use mapreduce::Context;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use suites::all_benchmarks;

    let names = [
        "sessionize/vip_bytes",
        "sessionize/hits_by_hour",
        "clickstream/windowed_weighted_sum",
        "clickstream/rank_above_history",
    ];
    let all = all_benchmarks();
    for name in names {
        let b = all.iter().find(|b| b.name == name).unwrap();
        let reference = translate_src(b.source, 1, casper_ir::Engine::default());
        let ref_fp = fingerprint(&reference);
        assert!(reference.translated_count() >= 1, "{name} must translate");
        for workers in [2, 4, 8] {
            let parallel = translate_src(b.source, workers, casper_ir::Engine::default());
            assert_eq!(
                ref_fp,
                fingerprint(&parallel),
                "{name}: artifacts diverged at {workers} workers"
            );
        }
        for workers in [1, 4] {
            let tree = translate_src(b.source, workers, casper_ir::Engine::ClosureTree);
            assert_eq!(
                ref_fp,
                fingerprint(&tree),
                "{name}: artifacts diverged on the closure-tree engine \
                 at {workers} workers"
            );
        }

        // Fused vs interpreted execution on the benchmark's own data,
        // evaluated from the fragment's pre-loop state (which seeds the
        // output accumulators the reduce stage may fall back to).
        let fr = reference.for_function(b.func).expect("fragment report");
        let FragmentOutcome::Translated { program, .. } = &fr.outcome else {
            panic!("{name} did not translate");
        };
        let source = std::sync::Arc::new(seqlang::compile(b.source).unwrap());
        let frag = analyzer::identify_fragments(&source)
            .into_iter()
            .find(|f| f.func == b.func)
            .expect("fragment");
        let mut rng = StdRng::seed_from_u64(7);
        let state = frag
            .pre_loop_state(&(b.gen)(&mut rng, 200))
            .expect("pre-loop state");
        let plan = &program.variants[0].plan;
        let serial_ctx = Context::with_parallelism(1, 8);
        let fused = plan.execute(&serial_ctx, &state).expect("fused exec");
        for workers in [2, 4, 8] {
            let ctx = Context::with_parallelism(workers, 8);
            let out = plan.execute(&ctx, &state).expect("fused exec");
            assert_eq!(
                fused, out,
                "{name}: fused outputs diverge at {workers} workers"
            );
            assert_eq!(
                serial_ctx.stats(),
                ctx.stats(),
                "{name}: stage stats diverge at {workers} workers"
            );
        }
        let interp_ctx = Context::with_parallelism(4, 8);
        let interp = plan
            .execute_interpreted(&interp_ctx, &state)
            .expect("interpreted exec");
        assert_eq!(fused, interp, "{name}: fused vs interpreted diverge");
        assert_eq!(
            serial_ctx.stats().total_shuffled_bytes(),
            interp_ctx.stats().total_shuffled_bytes(),
            "{name}: fusion changed shuffle bytes"
        );
        assert_eq!(
            serial_ctx.stats().shuffle_count(),
            interp_ctx.stats().shuffle_count(),
            "{name}: fusion changed shuffle count"
        );
    }
}

/// A compact trace of every search counter the determinism contract
/// covers, for whole-report comparison across runtime modes.
fn search_trace(report: &TranslationReport) -> Vec<(String, Vec<u64>)> {
    report
        .fragments
        .iter()
        .map(|f| {
            (
                f.id.clone(),
                vec![
                    f.search.candidates_generated,
                    f.search.candidates_deduped,
                    f.search.candidates_checked,
                    f.search.counter_examples,
                    f.search.sent_to_verifier,
                    f.search.classes_explored as u64,
                    f.search.verdict_cache_hits,
                    f.search.verdict_cache_misses,
                ],
            )
        })
        .collect()
}

/// The persistent work-stealing executor's adjudication contract: both
/// runtime modes must replay the serial reference bit-for-bit —
/// artifacts AND search traces — at every swept worker count. The serial
/// path (parallelism 1) is the golden reference the executor rework was
/// adjudicated against.
#[test]
fn runtime_modes_replay_serial_reference_across_worker_counts() {
    use casper_runtime::RuntimeMode;

    let serial = translate(1);
    let ref_fp = fingerprint(&serial);
    let ref_trace = search_trace(&serial);

    for mode in [RuntimeMode::Persistent, RuntimeMode::ScopedLegacy] {
        for workers in [1, 2, 4, 8] {
            let config = CasperConfig {
                find: FindConfig {
                    timeout: Duration::from_secs(300),
                    ..FindConfig::default()
                },
                ..CasperConfig::default()
            }
            .with_parallelism(workers)
            .with_runtime(mode);
            let report = Casper::new(config)
                .translate_source(SUITE_SRC)
                .expect("suite source compiles");
            assert_eq!(
                report.runtime_mode,
                mode.name(),
                "report must record the runtime mode it ran under"
            );
            assert_eq!(
                ref_fp,
                fingerprint(&report),
                "artifacts diverged from the serial reference under \
                 {} at {workers} workers",
                mode.name()
            );
            assert_eq!(
                ref_trace,
                search_trace(&report),
                "search trace diverged from the serial reference under \
                 {} at {workers} workers",
                mode.name()
            );
        }
    }
}

/// The serving layer's determinism contract: concurrent clients asking
/// casperd for the same source must all receive byte-identical payloads,
/// with exactly one cold translation — every other request is a cache
/// hit or coalesces onto the in-flight leader.
#[test]
fn casperd_serves_byte_identical_payloads_under_concurrency() {
    use casperd::{spawn_server, Client, TranslationService};
    use std::sync::Arc;
    use suites::{suite_benchmarks, Suite};

    let src = suite_benchmarks(Suite::Ariths)[0].source;
    let service = Arc::new(TranslationService::new(
        CasperConfig::default().with_parallelism(2),
        64,
        16 << 20,
    ));
    let addr = spawn_server(Arc::clone(&service)).expect("bind casperd");

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 3;
    let outcomes: Vec<Vec<(String, Vec<u8>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    (0..REQUESTS)
                        .map(|_| {
                            let r = client.translate(src).expect("translate");
                            (r.served, r.payload)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let reference = &outcomes[0][0].1;
    assert!(!reference.is_empty(), "payload must not be empty");
    let mut cold = 0usize;
    for per_client in &outcomes {
        for (served, payload) in per_client {
            assert_eq!(
                payload, reference,
                "served={served}: payload diverged across concurrent clients"
            );
            if served == "cold" {
                cold += 1;
            }
        }
    }
    assert_eq!(cold, 1, "exactly one cold translation must lead");
    // Every coalesced request first missed the cache before latching
    // onto the leader, so misses = 1 (leader) + coalesced.
    assert_eq!(service.cache.misses(), 1 + service.cache.coalesced());
    assert_eq!(
        service.cache.hits() + service.cache.coalesced(),
        (CLIENTS * REQUESTS - 1) as u64,
        "every non-leader request must be served from cache or coalesce"
    );
}

#[test]
fn plan_compile_time_is_accounted() {
    let report = translate(2);
    for f in &report.fragments {
        if f.outcome.is_translated() {
            assert!(
                f.plan_compile_time > Duration::ZERO,
                "{}: plan lowering must be timed",
                f.id
            );
            assert!(
                f.plan_compile_time <= f.compile_time,
                "{}: plan lowering exceeds total compile time",
                f.id
            );
        }
    }
    assert!(report.total_plan_compile_time() > Duration::ZERO);
}

#[test]
fn cpu_time_accounting_is_populated() {
    let report = translate(2);
    for f in &report.fragments {
        assert!(f.compile_time > Duration::ZERO, "{}: zero wall clock", f.id);
        assert!(f.cpu_time > Duration::ZERO, "{}: zero cpu time", f.id);
    }
    // Lower bound: the whole-translation wall clock includes every
    // fragment's translation, so it is at least the longest single
    // fragment's wall clock at any worker count.
    assert!(
        report.wall_time
            >= report
                .fragments
                .iter()
                .map(|f| f.compile_time)
                .max()
                .unwrap()
    );
}

/// One comparable line per translated fragment capturing everything the
/// optimizer decides: the top-k candidate order, every variant's
/// sampled byte cost and predicted wall clock (as exact bit patterns),
/// the plan choice, and the re-tune decision trace of a two-iteration
/// tuned driver. Any nondeterminism in enumeration order, costing, or
/// the observe/compare/switch loop changes this trace.
fn optimizer_trace(report: &TranslationReport, state: &seqlang::env::Env) -> Vec<String> {
    use codegen::{ProgramCache, TuningState};
    use mapreduce::Context;

    report
        .fragments
        .iter()
        .filter_map(|f| {
            let FragmentOutcome::Translated { program, .. } = &f.outcome else {
                return None;
            };
            let choice = program.choose(state);
            let mut line = format!(
                "{} variants=[{}] chosen={} costs={:?} predicted={:?}",
                f.id,
                program
                    .variants
                    .iter()
                    .map(|v| v.name.as_str())
                    .collect::<Vec<_>>()
                    .join(","),
                choice.chosen,
                choice.costs.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                choice
                    .predicted_seconds
                    .iter()
                    .map(|c| c.to_bits())
                    .collect::<Vec<_>>(),
            );
            let ctx = Context::with_parallelism(4, 8);
            let mut cache = ProgramCache::new();
            let mut tuning = TuningState::new();
            for _ in 0..2 {
                program
                    .run_tuned(&ctx, state, &mut cache, &mut tuning)
                    .expect("tuned iteration");
            }
            for d in &tuning.trace {
                line.push_str(&format!(
                    " | it{} run={} pred={:x} obs={:x} ratio={:x} switch={:?}",
                    d.iteration,
                    d.running,
                    d.predicted_seconds.to_bits(),
                    d.observed_seconds.to_bits(),
                    d.ratio.to_bits(),
                    d.switched_to,
                ));
            }
            Some(line)
        })
        .collect()
}

/// A state covering every suite fragment's inputs and pre-loop outputs.
fn cover_state() -> seqlang::env::Env {
    use seqlang::env::Env;
    use seqlang::value::Value;

    let mut state = Env::new();
    state.set(
        "xs",
        Value::List((0..200).map(|i| Value::Int((i * 7 % 83) - 41)).collect()),
    );
    state.set(
        "words",
        Value::List(
            (0..150)
                .map(|i| Value::str(format!("w{}", i % 13)))
                .collect(),
        ),
    );
    state.set("t", Value::Int(3));
    state.set("s", Value::Int(0));
    state.set("m", Value::Int(0));
    state.set("n", Value::Int(0));
    state.set("f", Value::Bool(false));
    state.set("q", Value::Int(0));
    state.set("counts", Value::Map(vec![]));
    state
}

/// The optimizer's determinism contract: top-k enumeration order, cost
/// estimates, plan choice, and re-tune decisions are bit-identical
/// across {serial, scoped-legacy, persistent} × 1/2/4/8 synthesis
/// workers and both IR engines — and the tuned driver's observed costs
/// and switch decisions do not depend on the *engine's* worker count
/// either.
#[test]
fn optimizer_decisions_deterministic_across_runtimes_engines_and_workers() {
    use casper_runtime::RuntimeMode;
    use codegen::{ProgramCache, TuningState};
    use mapreduce::Context;

    let state = cover_state();
    let serial = translate(1);
    let ref_trace = optimizer_trace(&serial, &state);
    assert!(!ref_trace.is_empty(), "suite must translate fragments");
    // The contract is only meaningful if some fragment retained several
    // verified variants for the monitor to choose between.
    assert!(
        serial.fragments.iter().any(|f| matches!(
            &f.outcome,
            FragmentOutcome::Translated { program, .. } if program.variants.len() >= 2
        )),
        "top-k search must hand the monitor a real choice somewhere"
    );

    for mode in [RuntimeMode::Persistent, RuntimeMode::ScopedLegacy] {
        for workers in [1, 2, 4, 8] {
            let config = CasperConfig {
                find: FindConfig {
                    timeout: Duration::from_secs(300),
                    ..FindConfig::default()
                },
                ..CasperConfig::default()
            }
            .with_parallelism(workers)
            .with_runtime(mode);
            let report = Casper::new(config)
                .translate_source(SUITE_SRC)
                .expect("suite source compiles");
            assert_eq!(
                ref_trace,
                optimizer_trace(&report, &state),
                "optimizer decisions diverged under {} at {workers} workers",
                mode.name()
            );
        }
    }
    for workers in [1, 4] {
        let tree = translate_with_engine(workers, casper_ir::Engine::ClosureTree);
        assert_eq!(
            ref_trace,
            optimizer_trace(&tree, &state),
            "optimizer decisions diverged on the closure-tree engine \
             at {workers} workers"
        );
    }

    // Engine-worker-count invariance of the tuned driver itself: the
    // normalized observed costs (and therefore every ratio and switch
    // decision) must not depend on how many workers executed the plan.
    let tuned = |engine_workers: usize| -> Vec<String> {
        serial
            .fragments
            .iter()
            .filter_map(|f| {
                let FragmentOutcome::Translated { program, .. } = &f.outcome else {
                    return None;
                };
                let ctx = Context::with_parallelism(engine_workers, 8);
                let mut cache = ProgramCache::new();
                let mut tuning = TuningState::new();
                for _ in 0..2 {
                    program
                        .run_tuned(&ctx, &state, &mut cache, &mut tuning)
                        .expect("tuned iteration");
                }
                Some(format!("{} {:?}", f.id, tuning.trace))
            })
            .collect()
    };
    let base = tuned(1);
    for engine_workers in [2, 4, 8] {
        assert_eq!(
            base,
            tuned(engine_workers),
            "tuned decisions diverged at {engine_workers} engine workers"
        );
    }
}
