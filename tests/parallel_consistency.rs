//! Regression guard for the parallel synthesis driver: translating the
//! same multi-fragment program at `parallelism = 1` and `parallelism = N`
//! must produce identical per-fragment outcomes — same summaries, same
//! generated code, same search-counter trace. This is the determinism
//! contract `synthesis::cegis`'s chunk-replay scheme promises.

use std::time::Duration;

use casper::{Casper, CasperConfig, FragmentOutcome, TranslationReport};
use casper_ir::pretty::pretty_summary;
use suites::MULTI_FRAGMENT_SRC as SUITE_SRC;
use synthesis::FindConfig;

fn translate(workers: usize) -> TranslationReport {
    // A generous timeout keeps the only legitimate source of
    // serial/parallel divergence — deadline truncation — out of play.
    let config = CasperConfig {
        find: FindConfig {
            timeout: Duration::from_secs(300),
            ..FindConfig::default()
        },
        ..CasperConfig::default()
    }
    .with_parallelism(workers);
    Casper::new(config)
        .translate_source(SUITE_SRC)
        .expect("suite source compiles")
}

/// A comparable fingerprint of everything outcome-relevant in a
/// fragment report.
fn fingerprint(report: &TranslationReport) -> Vec<String> {
    report
        .fragments
        .iter()
        .map(|f| match &f.outcome {
            FragmentOutcome::Translated {
                summaries,
                code,
                dialect,
                ..
            } => {
                let pretty: Vec<String> = summaries.iter().map(pretty_summary).collect();
                format!(
                    "{} translated [{:?}] summaries={} code={}",
                    f.id,
                    dialect,
                    pretty.join(" | "),
                    code,
                )
            }
            FragmentOutcome::Failed(reason) => {
                format!("{} failed: {}", f.id, reason.describe())
            }
        })
        .collect()
}

#[test]
fn parallel_and_serial_translations_are_identical() {
    let serial = translate(1);
    let parallel = translate(4);

    assert_eq!(serial.fragments.len(), 6, "six fragments identified");
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));

    // The search traces must match counter-for-counter, not just the
    // final artifacts: the parallel screener replays the sequential φ
    // evolution — including every observational-dedup decision — exactly.
    for (s, p) in serial.fragments.iter().zip(&parallel.fragments) {
        assert_eq!(
            s.search.candidates_generated, p.search.candidates_generated,
            "{}: candidates_generated diverged",
            s.id
        );
        assert_eq!(
            s.search.candidates_deduped, p.search.candidates_deduped,
            "{}: candidates_deduped diverged",
            s.id
        );
        assert_eq!(
            s.search.candidates_checked, p.search.candidates_checked,
            "{}: candidates_checked diverged",
            s.id
        );
        assert_eq!(
            s.search.counter_examples, p.search.counter_examples,
            "{}: counter_examples diverged",
            s.id
        );
        assert_eq!(
            s.search.sent_to_verifier, p.search.sent_to_verifier,
            "{}: sent_to_verifier diverged",
            s.id
        );
        assert_eq!(
            s.search.classes_explored, p.search.classes_explored,
            "{}: classes_explored diverged",
            s.id
        );
        assert_eq!(
            s.search.candidates_generated,
            s.search.candidates_checked + s.search.candidates_deduped,
            "{}: generated must equal checked + deduped",
            s.id
        );
    }

    // The dedup layer must actually absorb work somewhere in the suite
    // (the acceptance bar: ratio > 0 on at least one suite grammar).
    assert!(
        serial.total_deduped() > 0,
        "no fragment produced observational duplicates"
    );
    assert!(serial.dedup_ratio() > 0.0);
    assert_eq!(
        serial.total_generated(),
        serial.total_screened() + serial.total_deduped()
    );
}

#[test]
fn cpu_time_accounting_is_populated() {
    let report = translate(2);
    for f in &report.fragments {
        assert!(f.compile_time > Duration::ZERO, "{}: zero wall clock", f.id);
        assert!(f.cpu_time > Duration::ZERO, "{}: zero cpu time", f.id);
    }
    // Lower bound: the whole-translation wall clock includes every
    // fragment's translation, so it is at least the longest single
    // fragment's wall clock at any worker count.
    assert!(
        report.wall_time
            >= report
                .fragments
                .iter()
                .map(|f| f.compile_time)
                .max()
                .unwrap()
    );
}
