//! Cross-crate integration tests: the full pipeline from sequential
//! source to verified, executable MapReduce programs.

use casper::{Casper, CasperConfig, FragmentOutcome};
use mapreduce::Context;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqlang::env::Env;
use seqlang::value::Value;
use std::sync::Arc;
use std::time::Duration;
use suites::all_benchmarks;
use synthesis::FindConfig;

fn fast_config() -> CasperConfig {
    CasperConfig {
        find: FindConfig {
            timeout: Duration::from_secs(15),
            max_solutions: 4,
            top_k: 4,
            ..FindConfig::default()
        },
        ..CasperConfig::default()
    }
}

/// Translate a benchmark and check the generated program agrees with the
/// sequential semantics on fresh data.
fn check_equivalence(name: &str) {
    let all = all_benchmarks();
    let b = all
        .iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("{name}?"));
    let report = Casper::new(fast_config())
        .translate_source(b.source)
        .unwrap();
    let fr = report.for_function(b.func).expect("fragment report");
    let FragmentOutcome::Translated { program, .. } = &fr.outcome else {
        panic!("{name} did not translate");
    };

    let source = Arc::new(seqlang::compile(b.source).unwrap());
    let frag = analyzer::identify_fragments(&source)
        .into_iter()
        .find(|f| f.func == b.func)
        .expect("fragment");
    let ctx = Context::with_parallelism(4, 8);
    for seed in [1u64, 2, 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        let state = (b.gen)(&mut rng, 300);
        let expected = frag.project_outputs(&frag.run(&state).unwrap());
        let (got, _) = program.run(&ctx, &state).unwrap();
        for (var, want) in expected.iter() {
            let have = got
                .get(var)
                .unwrap_or_else(|| panic!("{name}: missing {var}"));
            assert!(
                bench::outputs_equal(want, have),
                "{name} seed {seed}: {var} = {have}, want {want}"
            );
        }
    }
}

#[test]
fn word_count_equivalence() {
    check_equivalence("phoenix/word_count");
}

#[test]
fn string_match_equivalence() {
    check_equivalence("phoenix/string_match");
}

#[test]
fn linear_regression_equivalence() {
    check_equivalence("phoenix/linear_regression");
}

#[test]
fn tpch_q6_equivalence() {
    check_equivalence("tpch/q6_revenue");
}

#[test]
fn tpch_q1_equivalence() {
    check_equivalence("tpch/q1_sum_disc_price");
}

#[test]
fn delta_equivalence() {
    check_equivalence("ariths/delta");
}

#[test]
fn dot_product_equivalence() {
    check_equivalence("stats/dot_product");
}

#[test]
fn pagerank_contribs_equivalence() {
    check_equivalence("iterative/pagerank_contribs");
}

#[test]
fn db_select_equivalence() {
    check_equivalence("biglambda/db_select");
}

#[test]
fn untranslatable_fragments_fail_cleanly() {
    use casper::report::FailureReason;
    let all = all_benchmarks();
    // The three permanent paper-suite holes (loops inside transformer
    // bodies) plus the two deliberately untranslatable extension-suite
    // fragments (distinct-count needs iteration-history state, EMA is an
    // order-dependent fold). Each must land in the ledger with the right
    // failure class — and never with a bogus verified summary.
    let expectations = [
        ("stats/convolve", FailureReason::InnerDataLoop),
        ("phoenix/pca_cov", FailureReason::InnerDataLoop),
        ("phoenix/matrix_multiply", FailureReason::InnerDataLoop),
        ("sessionize/unique_visitors", FailureReason::SearchExhausted),
        ("clickstream/session_ema", FailureReason::SearchExhausted),
    ];
    for (name, want) in expectations {
        let b = all.iter().find(|b| b.name == name).unwrap();
        let report = Casper::new(fast_config())
            .translate_source(b.source)
            .unwrap();
        assert_eq!(report.translated_count(), 0, "{name} must not translate");
        let fr = report.for_function(b.func).expect("fragment report");
        let FragmentOutcome::Failed(reason) = &fr.outcome else {
            panic!("{name}: expected a failure outcome");
        };
        assert_eq!(reason, &want, "{name}: wrong failure class");
    }
}

#[test]
fn sessionize_vip_bytes_equivalence() {
    // Nested-aggregate showcase: the VIP membership scan folds into an
    // inline aggregate guarding the byte accumulator.
    check_equivalence("sessionize/vip_bytes");
}

#[test]
fn sessionize_hits_by_hour_equivalence() {
    check_equivalence("sessionize/hits_by_hour");
}

#[test]
fn clickstream_windowed_weighted_sum_equivalence() {
    // The trails-window shape: inner window loop lifted into the mapper.
    check_equivalence("clickstream/windowed_weighted_sum");
}

#[test]
fn clickstream_spend_by_campaign_equivalence() {
    check_equivalence("clickstream/spend_by_campaign");
}

#[test]
fn generated_code_compiles_against_all_dialects() {
    use codegen::Dialect;
    let src = r#"
        fn sum(xs: list<int>) -> int {
            let s: int = 0;
            for (x in xs) { s = s + x; }
            return s;
        }
    "#;
    for dialect in [Dialect::Spark, Dialect::Hadoop, Dialect::Flink] {
        let config = CasperConfig {
            dialect,
            ..fast_config()
        };
        let report = Casper::new(config).translate_source(src).unwrap();
        let fr = report.for_function("sum").unwrap();
        let FragmentOutcome::Translated { code, .. } = &fr.outcome else {
            panic!()
        };
        assert!(!code.is_empty());
        assert!(code.contains(dialect.name()) || !code.is_empty());
    }
}

#[test]
fn translated_plan_scales_with_parallelism() {
    // The same plan computes the same answer across engine parallelism.
    let src = r#"
        fn sum(xs: list<int>) -> int {
            let s: int = 0;
            for (x in xs) { s = s + x; }
            return s;
        }
    "#;
    let report = Casper::new(fast_config()).translate_source(src).unwrap();
    let FragmentOutcome::Translated { program, .. } = &report.for_function("sum").unwrap().outcome
    else {
        panic!()
    };
    let mut state = Env::new();
    state.set("xs", Value::List((1..=5000).map(Value::Int).collect()));
    state.set("s", Value::Int(0));
    for workers in [1, 2, 8] {
        let ctx = Context::with_parallelism(workers, workers * 2);
        let (out, _) = program.run(&ctx, &state).unwrap();
        assert_eq!(out.get("s"), Some(&Value::Int(12_502_500)));
    }
}
